package wal_test

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"skycube/internal/data"
	"skycube/internal/delta"
	"skycube/internal/gen"
	"skycube/internal/mask"
	"skycube/internal/wal"
)

// openDurable mirrors the production bootstrap/recovery sequence exactly:
// fresh directories build the updater from the dataset and lay down the
// initial checkpoint; recovered ones rebuild at the checkpoint and replay
// the tail. Only then is the journal attached, so replayed mutations are
// never re-journaled.
func openDurable(t *testing.T, ds *data.Dataset, wopt wal.Options) (*delta.Updater, *wal.Store, int) {
	t.Helper()
	dopt := delta.Options{Threads: 2}
	s, rec, err := wal.Open(wopt)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	var u *delta.Updater
	replayed := 0
	if rec == nil {
		if ds == nil {
			t.Fatal("expected recovery, got a fresh directory")
		}
		u, err = delta.NewUpdaterFrom(delta.RestoreState{
			Dims: ds.Dims, Epoch: 1, Live: ds.N, Vals: ds.Vals[:ds.N*ds.Dims],
		}, dopt)
		if err != nil {
			t.Fatalf("initial build: %v", err)
		}
		if err := s.Checkpoint(u); err != nil {
			t.Fatalf("initial checkpoint: %v", err)
		}
	} else {
		u, err = delta.NewUpdaterFrom(rec.State, dopt)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		if replayed, err = s.Replay(u); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	u.AttachJournal(s)
	s.AttachUpdater(u)
	return u, s, replayed
}

// fingerprint captures everything recovery promises to restore: the epoch,
// the live count, and every subspace skyline.
func fingerprint(s *delta.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch=%d live=%d len=%d\n", s.Epoch(), s.Live(), s.Len())
	for d := mask.Mask(1); int(d) <= mask.NumSubspaces(s.Dims()); d++ {
		fmt.Fprintf(&b, "%b:%v\n", d, s.Skyline(d))
	}
	return b.String()
}

// mutate runs one batch — k inserts, then up to del deletes of low ids —
// and flushes it.
func mutate(t *testing.T, u *delta.Updater, k, del int, seed int64) *delta.Snapshot {
	t.Helper()
	extra := gen.Synthetic(gen.Independent, k, u.Current().Dims(), seed)
	for i := 0; i < extra.N; i++ {
		if _, err := u.Insert(extra.Point(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	snap := u.Current()
	for id := int32(0); id < int32(snap.Len()) && del > 0; id++ {
		if snap.Alive(id) {
			if err := u.Delete(id); err != nil {
				t.Fatalf("delete %d: %v", id, err)
			}
			del--
		}
	}
	return u.Flush()
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(m)
	return m
}

func snapFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "snap-*.ck"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(m)
	return m
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(b)) <= off {
		t.Fatalf("%s is %d bytes, cannot flip offset %d", path, len(b), off)
	}
	b[off] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, _, err := wal.Open(wal.Options{}); err == nil {
		t.Fatal("empty Dir accepted")
	}
	if _, _, err := wal.Open(wal.Options{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("unknown fsync policy accepted")
	}
}

// TestCleanShutdownRoundTrip is the core durability contract: mutate,
// close cleanly, reopen, and the recovered snapshot answers every subspace
// query identically — under every fsync policy, because Close always
// syncs.
func TestCleanShutdownRoundTrip(t *testing.T) {
	for _, policy := range []string{wal.FsyncAlways, wal.FsyncInterval, wal.FsyncNever} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			ds := gen.Synthetic(gen.Independent, 60, 3, 11)
			wopt := wal.Options{Dir: dir, Fsync: policy, SyncInterval: 5 * time.Millisecond, CheckpointEvery: -1}
			u, s, _ := openDurable(t, ds, wopt)
			mutate(t, u, 12, 4, 101)
			mutate(t, u, 7, 2, 102)
			u.Compact()
			mutate(t, u, 5, 1, 103)
			want := fingerprint(u.Current())
			u.Close()
			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			u2, s2, replayed := openDurable(t, nil, wopt)
			defer func() { u2.Close(); s2.Close() }()
			if replayed == 0 {
				t.Fatal("no records replayed")
			}
			if got := fingerprint(u2.Current()); got != want {
				t.Fatalf("recovered state diverged:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestCrashAfterFsync: a power cut after the ack-path fsync loses nothing
// — the replayed state is byte-for-byte the last flushed snapshot.
func TestCrashAfterFsync(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 50, 3, 7)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	mutate(t, u, 10, 3, 201)
	snap := mutate(t, u, 6, 2, 202)
	want := fingerprint(snap)
	if err := s.CrashForTest(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	u.Close()

	u2, s2, replayed := openDurable(t, nil, wopt)
	defer func() { u2.Close(); s2.Close() }()
	if replayed == 0 {
		t.Fatal("no records replayed")
	}
	if got := fingerprint(u2.Current()); got != want {
		t.Fatalf("recovered state diverged:\n got %s\nwant %s", got, want)
	}
}

// TestCrashBeforeFsync: records appended but never committed (the window
// before the ack-path fsync) vanish in a crash, and recovery lands on the
// last durable epoch instead of a half-applied batch.
func TestCrashBeforeFsync(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 40, 3, 8)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	durable := mutate(t, u, 8, 2, 301) // flushed => committed => fsynced
	want := fingerprint(durable)
	extra := gen.Synthetic(gen.Independent, 3, 3, 302)
	for i := 0; i < extra.N; i++ { // appended, buffered, never committed
		if _, err := u.Insert(extra.Point(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CrashForTest(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	u.Close()

	u2, s2, _ := openDurable(t, nil, wopt)
	defer func() { u2.Close(); s2.Close() }()
	if got := fingerprint(u2.Current()); got != want {
		t.Fatalf("recovered past the durable mark:\n got %s\nwant %s", got, want)
	}
	if ins, dels := u2.Pending(); ins != 0 || dels != 0 {
		t.Fatalf("uncommitted mutations resurrected: %d inserts, %d deletes pending", ins, dels)
	}
}

// TestTornTailTruncated: a frame cut off mid-record — the residue of a
// crash during a group commit — is truncated away and recovery proceeds
// with every record before it.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 40, 3, 9)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	mutate(t, u, 9, 2, 401)
	want := fingerprint(u.Current())
	u.Close()
	s.Close()

	segs := segFiles(t, dir)
	active := segs[len(segs)-1]
	// A frame header declaring 100 payload bytes, followed by only 10: the
	// file ends mid-record.
	torn := binary.LittleEndian.AppendUint32(nil, 100)
	torn = binary.LittleEndian.AppendUint32(torn, 0xdeadbeef)
	torn = append(torn, make([]byte, 10)...)
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(active)

	u2, s2, _ := openDurable(t, nil, wopt)
	defer func() { u2.Close(); s2.Close() }()
	if got := fingerprint(u2.Current()); got != want {
		t.Fatalf("recovered state diverged after torn-tail repair:\n got %s\nwant %s", got, want)
	}
	after, err := os.Stat(active)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-int64(len(torn)) {
		t.Fatalf("torn bytes not truncated: %d -> %d", before.Size(), after.Size())
	}
}

// TestInteriorCorruptionRefused: a CRC-corrupt record with intact records
// after it means the disk lied; recovery must fail loud, not skip it.
func TestInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 40, 3, 10)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	mutate(t, u, 9, 2, 501)
	u.Close()
	s.Close()

	segs := segFiles(t, dir)
	// Corrupt the first record's payload: segment header is 16 bytes, the
	// frame header 8 more, so offset 24 is the first payload byte.
	flipByte(t, segs[len(segs)-1], 24)

	if _, _, err := wal.Open(wopt); err == nil {
		t.Fatal("interior corruption recovered silently")
	} else if !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestSnapshotCorruption: a corrupt newest snapshot falls back to an older
// valid one; no valid snapshot at all fails loud.
func TestSnapshotCorruption(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 40, 3, 12)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	mutate(t, u, 6, 1, 601)
	want := fingerprint(u.Current())
	u.Close()
	s.Close()

	// A garbage file wearing a newer snapshot's name: skipped with a
	// warning, recovery proceeds from the real one.
	fake := filepath.Join(dir, "snap-00000000000000ff.ck")
	if err := os.WriteFile(fake, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	u2, s2, _ := openDurable(t, nil, wopt)
	if got := fingerprint(u2.Current()); got != want {
		t.Fatalf("fallback recovery diverged:\n got %s\nwant %s", got, want)
	}
	u2.Close()
	s2.Close()
	os.Remove(fake)

	// Corrupt the only real snapshot: nothing to fall back to.
	snaps := snapFiles(t, dir)
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, have %v", snaps)
	}
	flipByte(t, snaps[0], 20)
	if _, _, err := wal.Open(wopt); err == nil {
		t.Fatal("corrupt-only-snapshot recovered silently")
	} else if !strings.Contains(err.Error(), "no snapshot passes verification") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestCheckpointTruncates: a checkpoint leaves exactly one snapshot and
// one (empty) active segment, and recovery from it replays zero records.
func TestCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 50, 3, 13)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	mutate(t, u, 10, 3, 701)
	mutate(t, u, 4, 1, 702)
	want := fingerprint(u.Current())
	if err := s.Checkpoint(u); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if segs, snaps := segFiles(t, dir), snapFiles(t, dir); len(segs) != 1 || len(snaps) != 1 {
		t.Fatalf("after checkpoint: %d segments, %d snapshots", len(segs), len(snaps))
	}
	u.Close()
	s.Close()

	u2, s2, replayed := openDurable(t, nil, wopt)
	defer func() { u2.Close(); s2.Close() }()
	if replayed != 0 {
		t.Fatalf("replayed %d records from a fresh checkpoint", replayed)
	}
	if got := fingerprint(u2.Current()); got != want {
		t.Fatalf("checkpoint state diverged:\n got %s\nwant %s", got, want)
	}
}

// TestCheckpointCrashWindows snapshots the directory inside the two crash
// windows of the checkpoint protocol — just before and just after the
// atomic rename — and verifies both recover to the same state: the old
// (snapshot, tail) pair before the rename, the new one after.
func TestCheckpointCrashWindows(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 50, 3, 14)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	mutate(t, u, 10, 3, 801)
	mutate(t, u, 5, 1, 802)
	want := fingerprint(u.Current())

	var beforeDir, afterDir string
	s.TestBeforeRename = func() { beforeDir = copyDir(t, dir) }
	s.TestAfterRename = func() { afterDir = copyDir(t, dir) }
	if err := s.Checkpoint(u); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	u.Close()
	s.Close()

	for name, d := range map[string]string{"before-rename": beforeDir, "after-rename": afterDir} {
		wopt := wal.Options{Dir: d, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
		u2, s2, _ := openDurable(t, nil, wopt)
		if got := fingerprint(u2.Current()); got != want {
			t.Fatalf("%s recovery diverged:\n got %s\nwant %s", name, got, want)
		}
		u2.Close()
		s2.Close()
	}
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestAutoCheckpoint: append volume past CheckpointEvery triggers a
// background checkpoint that truncates the log.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 40, 3, 15)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: 8}
	u, s, _ := openDurable(t, ds, wopt)
	defer func() { u.Close(); s.Close() }()
	base := snapFiles(t, dir)
	mutate(t, u, 12, 0, 901) // 13 records >= 8
	deadline := time.Now().Add(10 * time.Second)
	for {
		snaps := snapFiles(t, dir)
		if len(snaps) > 0 && snaps[len(snaps)-1] != base[len(base)-1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no auto-checkpoint after %d records (snapshots: %v)", 13, snaps)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchMirrorSurvives: remembered idempotent-batch replies survive
// both paths — folded into a checkpoint, and replayed from the tail.
func TestBatchMirrorSurvives(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 30, 3, 16)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	if err := s.LogBatch("req-ck", 200, []byte(`{"ids":[1,2]}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(u); err != nil {
		t.Fatal(err)
	}
	if err := s.LogBatch("req-tail", 400, []byte(`bad request`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CrashForTest(); err != nil {
		t.Fatal(err)
	}
	u.Close()

	s2, rec, err := wal.Open(wopt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := rec.Batches
	if rep, ok := got["req-ck"]; !ok || rep.Status != 200 || string(rep.Body) != `{"ids":[1,2]}` {
		t.Fatalf("checkpointed batch reply lost or mangled: %+v", got["req-ck"])
	}
	if rep, ok := got["req-tail"]; !ok || rep.Status != 400 || string(rep.Body) != `bad request` {
		t.Fatalf("tail batch reply lost or mangled: %+v", got["req-tail"])
	}
}

// TestFreshDirLeftoverRecords: records in a directory with no snapshot
// have no base to replay onto; Open must refuse rather than drop them.
func TestFreshDirLeftoverRecords(t *testing.T) {
	dir := t.TempDir()
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	s, rec, err := wal.Open(wopt)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("fresh dir reported recovered state")
	}
	if err := s.LogInsert(1, 0, []float32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, _, err := wal.Open(wopt); err == nil {
		t.Fatal("orphan records accepted")
	} else if !strings.Contains(err.Error(), "no snapshot exists") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestFreshDirLeftoverEmptySegment: an empty segment — a crash between
// segment creation and the first checkpoint — is swept away silently.
func TestFreshDirLeftoverEmptySegment(t *testing.T) {
	dir := t.TempDir()
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	s, _, err := wal.Open(wopt)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, rec, err := wal.Open(wopt)
	if err != nil {
		t.Fatalf("empty leftover segment rejected: %v", err)
	}
	if rec != nil {
		t.Fatal("empty dir reported recovered state")
	}
	s2.Close()
}

// TestHeaderlessTrailingSegment: a crash inside segment creation — after
// the checkpoint picks the next seq but before the header write — leaves
// a zero-length wal file. It can hold no records (headers are fsynced
// before a segment is ever used), so recovery removes it and proceeds.
func TestHeaderlessTrailingSegment(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 40, 3, 18)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	mutate(t, u, 6, 1, 1101)
	want := fingerprint(u.Current())
	u.Close()
	s.Close()

	segs := segFiles(t, dir)
	lastSeq := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(segs[len(segs)-1]), "wal-"), ".log")
	var seq uint64
	fmt.Sscanf(lastSeq, "%016x", &seq)
	residue := filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq+1))
	if err := os.WriteFile(residue, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	u2, s2, _ := openDurable(t, nil, wopt)
	defer func() { u2.Close(); s2.Close() }()
	if got := fingerprint(u2.Current()); got != want {
		t.Fatalf("recovery with header-less residue diverged:\n got %s\nwant %s", got, want)
	}
	if _, err := os.Stat(residue); !os.IsNotExist(err) {
		t.Fatalf("header-less residue not removed: %v", err)
	}

	// The same residue in a fresh (never-checkpointed) directory is swept
	// too, rather than refused as an undecodable segment.
	fresh := t.TempDir()
	if err := os.WriteFile(filepath.Join(fresh, "wal-0000000000000001.log"), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, rec, err := wal.Open(wal.Options{Dir: fresh, Fsync: wal.FsyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("fresh open with header-less residue: %v", err)
	}
	if rec != nil {
		t.Fatal("residue reported as recovered state")
	}
	s3.Close()
}

// TestConcurrentCommits hammers the group-commit path from many writers
// (run under -race) and verifies a clean round trip afterwards.
func TestConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 40, 3, 17)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: 16}
	u, s, _ := openDurable(t, ds, wopt)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pts := gen.Synthetic(gen.Independent, 15, 3, int64(1000+w))
			for i := 0; i < pts.N; i++ {
				if _, err := u.Insert(pts.Point(i)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if i%5 == 4 {
					u.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
	u.Flush()
	want := fingerprint(u.Current())
	u.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	u2, s2, _ := openDurable(t, nil, wopt)
	defer func() { u2.Close(); s2.Close() }()
	if got := fingerprint(u2.Current()); got != want {
		t.Fatalf("recovered state diverged:\n got %s\nwant %s", got, want)
	}
}

// TestRecoveryIgnoresStaleCompactSignal: a flush during WAL replay whose
// overlay crosses the auto-compaction trigger queues a compaction signal
// before the compactor goroutine starts; when the tail then replays the
// compact record itself, that signal is stale. The compactor must re-check
// the trigger instead of compacting blindly, or recovery would drift one
// epoch past the pre-crash state and a restart would not be byte-identical.
func TestRecoveryIgnoresStaleCompactSignal(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 150, 3, 7)
	dopt := delta.Options{Threads: 2, AutoCompact: true, CompactFraction: 0.05, MinCompactOverlay: 1}
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}

	s, rec, err := wal.Open(wopt)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if rec != nil {
		t.Fatal("fresh directory reported recovered state")
	}
	u, err := delta.NewUpdaterFrom(delta.RestoreState{
		Dims: ds.Dims, Epoch: 1, Live: ds.N, Vals: ds.Vals[:ds.N*ds.Dims],
	}, dopt)
	if err != nil {
		t.Fatalf("initial build: %v", err)
	}
	if err := s.Checkpoint(u); err != nil {
		t.Fatalf("initial checkpoint: %v", err)
	}
	u.AttachJournal(s)
	s.AttachUpdater(u)

	// The compactor goroutine stays unstarted so the pre-crash epoch is
	// deterministic: flush past the trigger, then compact explicitly —
	// the durable tail is insert…·flush·compact.
	extra := gen.Synthetic(gen.Independent, 100, 3, 8)
	for i := 0; i < extra.N; i++ {
		if _, err := u.Insert(extra.Point(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	u.Flush()
	u.Compact()
	want := fingerprint(u.Current())
	u.Close()
	if err := s.CrashForTest(); err != nil {
		t.Fatalf("crash: %v", err)
	}

	s2, rec2, err := wal.Open(wopt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rec2 == nil {
		t.Fatal("expected recovered state")
	}
	u2, err := delta.NewUpdaterFrom(rec2.State, dopt)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if _, err := s2.Replay(u2); err != nil {
		t.Fatalf("replay: %v", err)
	}
	u2.AttachJournal(s2)
	s2.AttachUpdater(u2)
	u2.StartAutoCompact()
	defer func() { u2.Close(); s2.Close() }()

	// Give a wrongly-woken compactor ample time to do damage, then verify
	// the epoch (part of the fingerprint) did not move past the replayed
	// state.
	time.Sleep(250 * time.Millisecond)
	if got := fingerprint(u2.Current()); got != want {
		t.Fatalf("post-recovery state drifted:\n got %s\nwant %s", got, want)
	}
}
