package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"skycube/internal/delta"
	"skycube/internal/obs"
)

// Fsync policies for Options.Fsync.
const (
	// FsyncAlways makes Commit fsync (group-committed: one fsync covers
	// every record appended since the last). An acknowledged write survives
	// power loss.
	FsyncAlways = "always"
	// FsyncInterval fsyncs on a timer (Options.SyncInterval); Commit only
	// flushes to the OS. A crash loses at most one interval of acks.
	FsyncInterval = "interval"
	// FsyncNever never fsyncs during operation (Close still does). A crash
	// loses whatever the OS had not written back.
	FsyncNever = "never"
)

// DefaultSyncInterval is the FsyncInterval period when unset.
const DefaultSyncInterval = 100 * time.Millisecond

// DefaultCheckpointEvery is the auto-checkpoint record threshold when
// Options.CheckpointEvery is 0.
const DefaultCheckpointEvery = 4096

// maxRememberedBatches caps the batch-reply mirror, matching the serving
// layer's replay-cache cap; oldest entries evict first.
const maxRememberedBatches = 4096

// Options configure Open.
type Options struct {
	// Dir is the node's data directory; created if absent.
	Dir string
	// Fsync is the durability policy: FsyncAlways (default), FsyncInterval
	// or FsyncNever.
	Fsync string
	// SyncInterval is the FsyncInterval period; 0 means
	// DefaultSyncInterval.
	SyncInterval time.Duration
	// CheckpointEvery triggers a background checkpoint after this many
	// records since the last one; 0 means DefaultCheckpointEvery, negative
	// disables auto-checkpointing (Checkpoint still works).
	CheckpointEvery int
	// Metrics, if non-nil, receives skycube_wal_* observations.
	Metrics *obs.WALMetrics
	// Logger, if non-nil, logs recovery progress and torn-tail warnings.
	Logger *log.Logger
}

// BatchReply is a remembered idempotent-insert outcome, persisted so a
// client retry after a restart still replays instead of re-applying.
type BatchReply struct {
	Status int
	Body   []byte
}

// Store is the open write-ahead log of one node. It implements
// delta.Journal: the updater appends records through it, and the serving
// layer's ack path calls Commit. All methods are safe for concurrent use.
type Store struct {
	dir string
	opt Options

	// mu guards the append state: the active segment, its buffered writer,
	// byte/record counters and the batch mirror.
	mu      sync.Mutex
	f       *os.File
	buf     *bufio.Writer
	seq     uint64 // active segment's sequence number
	written int64  // bytes handed to buf for the active segment (header incl.)
	flushed int64  // bytes flushed to the OS for the active segment
	synced  int64  // bytes known fsynced for the active segment
	count   uint64 // records appended over the store's lifetime
	sinceCk uint64 // records appended since the last checkpoint
	snapSeq uint64 // seq of the newest on-disk snapshot (0 before the first)
	closed  bool

	batches    map[string]BatchReply
	batchOrder []string

	// Group commit: the first committer past the durable high-water mark
	// becomes the leader and fsyncs once for everyone waiting.
	sMu       sync.Mutex
	sCond     *sync.Cond
	syncing   bool
	syncedCnt uint64 // records known durable
	syncErr   error  // sticky: a failed fsync poisons the store

	// ckMu serialises checkpoints; updater is the replay/capture target,
	// set once by AttachUpdater before serving.
	ckMu    sync.Mutex
	updater *delta.Updater

	// tailRecords is the decoded WAL tail Open left for Replay.
	tailRecords []Record

	ckCh     chan struct{}
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	loopOnce sync.Once

	// Test hooks, called (when non-nil) just before and just after the
	// checkpoint's atomic rename — the two crash windows worth aiming at.
	TestBeforeRename func()
	TestAfterRename  func()
}

func segName(seq uint64) string  { return fmt.Sprintf("wal-%016x.log", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.ck", seq) }

const (
	segMagic     = "SKYWAL01"
	snapMagic    = "SKYSNP01"
	segHeaderLen = 16 // magic + u64 seq
)

// createSegment writes a new empty segment file with a synced header.
func createSegment(dir string, seq uint64) (*os.File, error) {
	path := filepath.Join(dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs the data directory, making renames and creates durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// newStore wires the in-memory structure around an already-open active
// segment positioned at off bytes.
func newStore(opt Options, f *os.File, seq uint64, off int64) *Store {
	if opt.Fsync == "" {
		opt.Fsync = FsyncAlways
	}
	if opt.SyncInterval <= 0 {
		opt.SyncInterval = DefaultSyncInterval
	}
	if opt.CheckpointEvery == 0 {
		opt.CheckpointEvery = DefaultCheckpointEvery
	}
	s := &Store{
		dir:     opt.Dir,
		opt:     opt,
		f:       f,
		buf:     bufio.NewWriterSize(f, 1<<16),
		seq:     seq,
		written: off,
		flushed: off,
		synced:  off,
		batches: make(map[string]BatchReply),
		ckCh:    make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
	}
	s.sCond = sync.NewCond(&s.sMu)
	return s
}

// AttachUpdater hands the store the updater it checkpoints, and starts the
// background interval-sync and auto-checkpoint loops. Call once, after
// recovery/bootstrap, before serving.
func (s *Store) AttachUpdater(u *delta.Updater) {
	s.ckMu.Lock()
	s.updater = u
	s.ckMu.Unlock()
	s.loopOnce.Do(func() {
		if s.opt.Fsync == FsyncInterval {
			s.wg.Add(1)
			go s.syncLoop()
		}
		if s.opt.CheckpointEvery > 0 {
			s.wg.Add(1)
			go s.checkpointLoop()
		}
	})
}

// ---- delta.Journal ----

// LogInsert implements delta.Journal.
func (s *Store) LogInsert(epoch uint64, id int32, point []float32) error {
	return s.append(&Record{Type: recInsert, Epoch: epoch, ID: id, Point: point})
}

// LogDelete implements delta.Journal.
func (s *Store) LogDelete(epoch uint64, id int32) error {
	return s.append(&Record{Type: recDelete, Epoch: epoch, ID: id})
}

// LogEpoch implements delta.Journal.
func (s *Store) LogEpoch(compact bool, epoch uint64, live int) error {
	typ := byte(recFlush)
	if compact {
		typ = recCompact
	}
	return s.append(&Record{Type: typ, Epoch: epoch, Live: uint64(live)})
}

// LogBatch persists one remembered idempotent-insert reply, both to the
// log (so it replays into the post-crash mirror) and to the in-store
// mirror (so checkpoints carry replies whose records were truncated away).
func (s *Store) LogBatch(id string, status int, body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(&Record{Type: recBatch, BatchID: id, Status: status, Body: body}); err != nil {
		return err
	}
	s.rememberLocked(id, BatchReply{Status: status, Body: body})
	return nil
}

// RememberedBatches returns a copy of the batch-reply mirror (recovery
// hands it to the serving layer to seed its replay cache).
func (s *Store) RememberedBatches() map[string]BatchReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BatchReply, len(s.batches))
	for id, rep := range s.batches {
		out[id] = rep
	}
	return out
}

func (s *Store) rememberLocked(id string, rep BatchReply) {
	if _, known := s.batches[id]; !known {
		s.batchOrder = append(s.batchOrder, id)
	}
	s.batches[id] = rep
	for len(s.batchOrder) > maxRememberedBatches {
		delete(s.batches, s.batchOrder[0])
		s.batchOrder = s.batchOrder[1:]
	}
}

func (s *Store) append(r *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(r)
}

func (s *Store) appendLocked(r *Record) error {
	if s.closed {
		return errors.New("wal: store closed")
	}
	payload, err := appendPayload(nil, r)
	if err != nil {
		return err
	}
	frame := appendFrame(nil, payload)
	if _, err := s.buf.Write(frame); err != nil {
		return err
	}
	s.written += int64(len(frame))
	s.count++
	s.sinceCk++
	s.opt.Metrics.Append(len(frame))
	if s.opt.CheckpointEvery > 0 && s.sinceCk >= uint64(s.opt.CheckpointEvery) {
		select {
		case s.ckCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// Commit implements delta.Journal: it blocks until every record appended
// so far is durable per the fsync policy. Under FsyncAlways concurrent
// committers group-commit — one leader fsyncs for all waiters whose
// records the flush covered.
func (s *Store) Commit() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("wal: store closed")
	}
	target := s.count
	if s.opt.Fsync != FsyncAlways {
		err := s.flushLocked()
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()

	s.sMu.Lock()
	for s.syncedCnt < target && s.syncing {
		s.sCond.Wait()
	}
	if s.syncErr != nil {
		err := s.syncErr
		s.sMu.Unlock()
		return err
	}
	if s.syncedCnt >= target {
		s.sMu.Unlock()
		return nil
	}
	s.syncing = true
	s.sMu.Unlock()

	covered, err := s.syncOnce()

	s.sMu.Lock()
	if err != nil {
		s.syncErr = err
	} else if covered > s.syncedCnt {
		s.syncedCnt = covered
	}
	s.syncing = false
	s.sCond.Broadcast()
	s.sMu.Unlock()
	return err
}

// flushLocked pushes the buffered frames to the OS. Caller holds s.mu.
func (s *Store) flushLocked() error {
	if err := s.buf.Flush(); err != nil {
		return err
	}
	s.flushed = s.written
	return nil
}

// syncOnce flushes and fsyncs the active segment, returning the record
// count the sync covers. A rotation racing the fsync is benign: rotate
// syncs the outgoing segment itself before swapping, so every record up to
// the captured count is durable either way (a Sync on the closed old file
// reports os.ErrClosed and is ignored).
func (s *Store) syncOnce() (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, errors.New("wal: store closed")
	}
	if err := s.flushLocked(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	f := s.f
	covered := s.count
	size := s.written
	start := time.Now()
	s.mu.Unlock()
	s.sMu.Lock()
	prevSynced := s.syncedCnt // durable mark, for the batch-size metric only
	s.sMu.Unlock()

	err := f.Sync()
	if err != nil && errors.Is(err, os.ErrClosed) {
		err = nil
	}
	if err != nil {
		return 0, err
	}

	s.mu.Lock()
	if f == s.f && size > s.synced {
		s.synced = size
	}
	s.mu.Unlock()
	s.opt.Metrics.Fsync(int(covered-prevSynced), time.Since(start))
	return covered, nil
}

// syncLoop is the FsyncInterval ticker.
func (s *Store) syncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			covered, err := s.syncOnce()
			s.sMu.Lock()
			if err != nil && s.syncErr == nil {
				s.syncErr = err
			}
			if covered > s.syncedCnt {
				s.syncedCnt = covered
			}
			s.sMu.Unlock()
		}
	}
}

// checkpointLoop runs auto-checkpoints signalled by append volume.
func (s *Store) checkpointLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.ckCh:
			s.ckMu.Lock()
			u := s.updater
			s.ckMu.Unlock()
			if u == nil {
				continue
			}
			if err := s.Checkpoint(u); err != nil && s.opt.Logger != nil {
				s.opt.Logger.Printf("wal: auto-checkpoint: %v", err)
			}
		}
	}
}

// Checkpoint captures a consistent snapshot of u, writes it atomically,
// and truncates the log: a new segment becomes active at the exact capture
// point, the snapshot (named by that segment's seq) is written to a temp
// file, fsynced, renamed into place, and only then are the older segments
// and snapshots deleted. A crash anywhere in between leaves either the old
// (snapshot, tail) pair or the new one — never neither.
func (s *Store) Checkpoint(u *delta.Updater) error {
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	start := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("wal: store closed")
	}
	newSeq := s.seq + 1
	s.mu.Unlock()

	// The next segment is created (and its header synced) outside every
	// lock — the capture point below only swaps pointers.
	nf, err := createSegment(s.dir, newSeq)
	if err != nil {
		return fmt.Errorf("wal: checkpoint segment: %w", err)
	}

	var batches map[string]BatchReply
	var batchOrder []string
	var old *os.File
	st, err := u.CaptureState(func(epoch uint64) error {
		// Called under the updater's apply and buffer locks: no journal
		// append can be concurrent, so the segment swap is an exact
		// boundary between "in the snapshot" and "in the tail".
		s.mu.Lock()
		defer s.mu.Unlock()
		if err := s.flushLocked(); err != nil {
			return err
		}
		if err := s.f.Sync(); err != nil {
			return err
		}
		old = s.f
		s.f = nf
		s.buf.Reset(nf)
		s.seq = newSeq
		s.written = segHeaderLen
		s.flushed = segHeaderLen
		s.synced = segHeaderLen
		s.sinceCk = 0
		batches = make(map[string]BatchReply, len(s.batches))
		for id, rep := range s.batches {
			batches[id] = rep
		}
		batchOrder = append([]string(nil), s.batchOrder...)
		return nil
	})
	if err != nil {
		nf.Close()
		os.Remove(filepath.Join(s.dir, segName(newSeq)))
		return fmt.Errorf("wal: checkpoint capture: %w", err)
	}
	// Every record in pre-rotation segments is durable; in-flight Commits
	// holding the old file tolerate its closure (see syncOnce).
	old.Close()

	tmp := filepath.Join(s.dir, snapName(newSeq)+".tmp")
	size, err := writeSnapshotFile(tmp, newSeq, st, batches, batchOrder)
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if s.TestBeforeRename != nil {
		s.TestBeforeRename()
	}
	final := filepath.Join(s.dir, snapName(newSeq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("wal: checkpoint dir sync: %w", err)
	}
	s.mu.Lock()
	s.snapSeq = newSeq
	s.mu.Unlock()
	if s.TestAfterRename != nil {
		s.TestAfterRename()
	}

	// Truncate: the new snapshot is durable, so everything older is dead
	// weight. Deletion failures are retried by the next checkpoint.
	truncated := 0
	segs, snaps, _ := scanDir(s.dir)
	for _, seg := range segs {
		if seg < newSeq {
			if os.Remove(filepath.Join(s.dir, segName(seg))) == nil {
				truncated++
			}
		}
	}
	for _, sn := range snaps {
		if sn < newSeq {
			os.Remove(filepath.Join(s.dir, snapName(sn)))
		}
	}
	_ = syncDir(s.dir)
	s.opt.Metrics.Checkpoint(time.Since(start), size, truncated)
	if s.opt.Logger != nil {
		s.opt.Logger.Printf("wal: checkpoint at epoch %d (segment %d, %d bytes, %d segments truncated)",
			st.Epoch, newSeq, size, truncated)
	}
	return nil
}

// Close stops the background loops, flushes and fsyncs the active segment,
// and closes it. A clean shutdown therefore loses nothing, whatever the
// fsync policy. Safe to call once.
func (s *Store) Close() error {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.buf.Flush()
	if serr := s.f.Sync(); err == nil {
		err = serr
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CrashForTest simulates a power cut: buffered (unflushed) records are
// discarded outright, and the active segment is truncated back to its last
// fsynced size — exactly the state a kernel crash leaves under the given
// fsync policy. The store is unusable afterwards.
func (s *Store) CrashForTest() error {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	path := filepath.Join(s.dir, segName(s.seq))
	s.f.Close()
	return os.Truncate(path, s.synced)
}

// scanDir lists the segment and snapshot sequence numbers present in dir,
// each sorted ascending.
func scanDir(dir string) (segs, snaps []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		var seq uint64
		switch {
		case len(name) == len("wal-0000000000000000.log") && name[:4] == "wal-" && filepath.Ext(name) == ".log":
			if _, err := fmt.Sscanf(name, "wal-%016x.log", &seq); err == nil {
				segs = append(segs, seq)
			}
		case len(name) == len("snap-0000000000000000.ck") && name[:5] == "snap-" && filepath.Ext(name) == ".ck":
			if _, err := fmt.Sscanf(name, "snap-%016x.ck", &seq); err == nil {
				snaps = append(snaps, seq)
			}
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	sort.Slice(snaps, func(a, b int) bool { return snaps[a] < snaps[b] })
	return segs, snaps, nil
}
