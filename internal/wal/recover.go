package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"skycube/internal/delta"
)

// Recovered is what Open found on disk: the checkpoint state to rebuild
// the updater from, and the remembered idempotent-batch replies. The
// decoded WAL tail stays inside the store until Replay drives it through
// the rebuilt updater.
type Recovered struct {
	// State reconstructs the updater via delta.NewUpdaterFrom.
	State delta.RestoreState
	// Batches seeds the serving layer's idempotent-insert replay cache
	// (checkpoint batches merged with tail batch records).
	Batches map[string]BatchReply
	// TailRecords is how many records Replay will apply.
	TailRecords int
}

// Open opens (or initialises) the data directory. A nil Recovered means a
// fresh directory: build the updater normally and call Checkpoint once to
// lay down the initial snapshot. A non-nil Recovered means state exists:
// rebuild via delta.NewUpdaterFrom(rec.State, ...), then call Replay, then
// AttachJournal/AttachUpdater — in that order, so replayed mutations are
// not re-journaled and no background compaction interleaves with replay.
func Open(opt Options) (*Store, *Recovered, error) {
	if opt.Dir == "" {
		return nil, nil, errors.New("wal: no data directory")
	}
	switch opt.Fsync {
	case "", FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return nil, nil, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", opt.Fsync)
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, snaps, err := scanDir(opt.Dir)
	if err != nil {
		return nil, nil, err
	}

	if len(snaps) == 0 {
		return openFresh(opt, segs)
	}

	// Newest snapshot whose CRC verifies wins; corrupt ones are skipped
	// with a warning (the paired tail segments still exist, and an older
	// (snapshot, longer tail) pair replays to the same state).
	var sd *snapshotData
	for i := len(snaps) - 1; i >= 0; i-- {
		cand, err := readSnapshotFile(filepath.Join(opt.Dir, snapName(snaps[i])))
		if err != nil {
			if opt.Logger != nil {
				opt.Logger.Printf("wal: skipping snapshot %s: %v", snapName(snaps[i]), err)
			}
			continue
		}
		sd = cand
		break
	}
	if sd == nil {
		return nil, nil, fmt.Errorf("wal: %s: no snapshot passes verification", opt.Dir)
	}

	// The tail is the contiguous run of segments from the snapshot's seq.
	var tail []uint64
	for _, seq := range segs {
		if seq >= sd.tailSeq {
			tail = append(tail, seq)
		}
	}
	if len(tail) == 0 || tail[0] != sd.tailSeq {
		return nil, nil, fmt.Errorf("wal: %s: snapshot %d's tail segment is missing", opt.Dir, sd.tailSeq)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i] != tail[i-1]+1 {
			return nil, nil, fmt.Errorf("wal: %s: segment gap between %d and %d", opt.Dir, tail[i-1], tail[i])
		}
	}

	// A trailing segment shorter than its header is the residue of a crash
	// inside segment creation: headers are written and fsynced before a
	// segment is ever appended to (and before the snapshot naming it can be
	// renamed into place), so such a file can hold no records — remove it.
	// Anywhere but the end, or on the snapshot's own segment, a short file
	// breaks the protocol's promises and recovery fails loud instead.
	last := filepath.Join(opt.Dir, segName(tail[len(tail)-1]))
	if fi, err := os.Stat(last); err == nil && fi.Size() < segHeaderLen {
		if len(tail) == 1 {
			return nil, nil, fmt.Errorf("wal: %s: snapshot %d's tail segment is truncated", opt.Dir, sd.tailSeq)
		}
		if err := os.Remove(last); err != nil {
			return nil, nil, err
		}
		_ = syncDir(opt.Dir)
		if opt.Logger != nil {
			opt.Logger.Printf("wal: removed header-less segment %s (crash during segment creation)",
				segName(tail[len(tail)-1]))
		}
		tail = tail[:len(tail)-1]
	}

	var records []Record
	for i, seq := range tail {
		recs, err := readSegment(opt, seq, i == len(tail)-1)
		if err != nil {
			return nil, nil, err
		}
		records = append(records, recs...)
	}

	active := tail[len(tail)-1]
	f, off, err := openSegmentAppend(opt.Dir, active)
	if err != nil {
		return nil, nil, err
	}
	s := newStore(opt, f, active, off)
	s.snapSeq = sd.tailSeq
	for _, id := range sd.batchOrder {
		s.rememberLocked(id, sd.batches[id])
	}
	for _, r := range records {
		if r.Type == recBatch {
			s.rememberLocked(r.BatchID, BatchReply{Status: r.Status, Body: r.Body})
		}
	}
	s.tailRecords = records
	rec := &Recovered{State: sd.state, Batches: s.RememberedBatches(), TailRecords: len(records)}
	return s, rec, nil
}

// openFresh initialises an empty (or never-checkpointed) directory. Any
// leftover segment must hold zero records — a crash between segment
// creation and the first checkpoint — or the log is unrecoverable without
// its base and Open refuses.
func openFresh(opt Options, segs []uint64) (*Store, *Recovered, error) {
	next := uint64(1)
	for _, seq := range segs {
		path := filepath.Join(opt.Dir, segName(seq))
		if fi, err := os.Stat(path); err == nil && fi.Size() < segHeaderLen {
			// Crash during segment creation, before the header write: the
			// file was never usable, so it cannot hold records.
			os.Remove(path)
			if seq >= next {
				next = seq + 1
			}
			continue
		}
		recs, _, err := decodeSegmentFile(path, seq)
		if err != nil || len(recs) > 0 {
			return nil, nil, fmt.Errorf("wal: %s: segment %d holds records but no snapshot exists", opt.Dir, seq)
		}
		os.Remove(path)
		if seq >= next {
			next = seq + 1
		}
	}
	f, err := createSegment(opt.Dir, next)
	if err != nil {
		return nil, nil, err
	}
	if err := syncDir(opt.Dir); err != nil {
		f.Close()
		return nil, nil, err
	}
	return newStore(opt, f, next, segHeaderLen), nil, nil
}

// openSegmentAppend opens a verified segment for appending, returning its
// current size.
func openSegmentAppend(dir string, seq uint64) (*os.File, int64, error) {
	path := filepath.Join(dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// readSegment decodes one tail segment. In the final segment a torn tail —
// the crash residue of an interrupted group commit — is truncated away
// with a warning; everywhere else any undecodable byte is fatal.
func readSegment(opt Options, seq uint64, final bool) ([]Record, error) {
	path := filepath.Join(opt.Dir, segName(seq))
	recs, badOff, err := decodeSegmentFile(path, seq)
	if err == nil {
		return recs, nil
	}
	if !final || !isTornTail(err) {
		return nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	fi, statErr := os.Stat(path)
	if statErr != nil {
		return nil, statErr
	}
	dropped := fi.Size() - badOff
	if truncErr := os.Truncate(path, badOff); truncErr != nil {
		return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, truncErr)
	}
	if syncErr := syncFile(path); syncErr != nil {
		return nil, syncErr
	}
	opt.Metrics.TornTail(dropped)
	if opt.Logger != nil {
		opt.Logger.Printf("wal: truncated torn tail of %s (%d bytes dropped after %d records): %v",
			segName(seq), dropped, len(recs), err)
	}
	return recs, nil
}

func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// segmentError wraps a decode failure with whether intact records follow
// it — the discriminator between a torn tail (repairable) and interior
// corruption (fatal).
type segmentError struct {
	err      error
	interior bool
}

func (e *segmentError) Error() string { return e.err.Error() }
func (e *segmentError) Unwrap() error { return e.err }

// isTornTail reports whether err is a repairable torn tail: a decode
// failure with nothing decodable after it.
func isTornTail(err error) bool {
	var se *segmentError
	return errors.As(err, &se) && !se.interior
}

// decodeSegmentFile reads every record of one segment. On a decode
// failure it returns the records before the failure, the byte offset the
// failure starts at, and a *segmentError saying whether intact records
// follow the bad region (interior corruption) or not (torn tail).
func decodeSegmentFile(path string, seq uint64) ([]Record, int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return decodeSegmentBytes(raw, seq)
}

// decodeSegmentBytes decodes a whole segment image already in memory (the
// tail streamer reads the active segment under the append lock and decodes
// it after releasing).
func decodeSegmentBytes(raw []byte, seq uint64) ([]Record, int64, error) {
	if len(raw) < segHeaderLen || string(raw[:8]) != segMagic {
		return nil, 0, fmt.Errorf("not a WAL segment")
	}
	if got := binary.LittleEndian.Uint64(raw[8:16]); got != seq {
		return nil, 0, fmt.Errorf("segment header seq %d, want %d", got, seq)
	}
	var recs []Record
	b := raw[segHeaderLen:]
	off := int64(segHeaderLen)
	for len(b) > 0 {
		r, rest, err := DecodeFrame(b)
		if err != nil {
			return recs, off, &segmentError{err: err, interior: decodesAhead(b)}
		}
		recs = append(recs, r)
		off += int64(len(b) - len(rest))
		b = rest
	}
	return recs, off, nil
}

// decodesAhead reports whether any intact frame chain follows the bad
// frame at the start of b: if the bad frame's declared length is in
// bounds, and the bytes after it decode as valid frames through to the end
// of the segment, the bad bytes sit between good records — interior
// corruption, not a torn tail.
func decodesAhead(b []byte) bool {
	if len(b) < frameHeaderSize {
		return false
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	if n < 9 || n > maxRecordSize || len(b) < frameHeaderSize+n {
		return false
	}
	rest := b[frameHeaderSize+n:]
	if len(rest) == 0 {
		return false
	}
	for len(rest) > 0 {
		_, next, err := DecodeFrame(rest)
		if err != nil {
			return false
		}
		rest = next
	}
	return true
}

// Replay drives the decoded WAL tail through the rebuilt updater's
// ordinary mutation path, verifying each record's effect: inserts must be
// assigned the recorded id, epoch markers must produce the recorded epoch
// and live count. Call before AttachJournal (replayed mutations must not
// be re-journaled) and before the background compactor starts (replay
// must drive every epoch advance itself). Returns the replayed record
// count.
func (s *Store) Replay(u *delta.Updater) (int, error) {
	start := time.Now()
	records := s.tailRecords
	s.tailRecords = nil
	// Batch records were already folded into the mirror at Open, so no
	// batch sink is needed here.
	n, err := Apply(u, records, nil)
	if err != nil {
		return n, err
	}
	s.opt.Metrics.Recovery(time.Since(start), len(records), u.Current().Epoch())
	if s.opt.Logger != nil && len(records) > 0 {
		s.opt.Logger.Printf("wal: replayed %d records to epoch %d in %v",
			len(records), u.Current().Epoch(), time.Since(start))
	}
	return len(records), nil
}

// Apply drives decoded WAL records through the updater's ordinary mutation
// path, verifying each record's effect exactly as crash recovery does:
// inserts must be assigned the recorded id, epoch markers must produce the
// recorded epoch and live count. Batch-reply records are handed to the
// batch sink when one is given (a replica catching up from a peer's tail
// mirrors them into its own store) and skipped otherwise. It returns how
// many records were applied before the first failure.
//
// Unlike Replay, Apply may run with a journal attached: a joining replica
// applies a peer's tail through its own journaled updater, making the
// catch-up itself durable.
func Apply(u *delta.Updater, records []Record, batch func(id string, status int, body []byte) error) (int, error) {
	for i, r := range records {
		switch r.Type {
		case recInsert:
			id, err := u.Insert(r.Point)
			if err != nil {
				return i, fmt.Errorf("wal: replay record %d: insert: %w", i, err)
			}
			if id != r.ID {
				return i, fmt.Errorf("wal: replay record %d: insert assigned id %d, log says %d", i, id, r.ID)
			}
		case recDelete:
			if err := u.Delete(r.ID); err != nil {
				return i, fmt.Errorf("wal: replay record %d: delete %d: %w", i, r.ID, err)
			}
		case recFlush, recCompact:
			var snap *delta.Snapshot
			if r.Type == recFlush {
				snap = u.Flush()
			} else {
				snap = u.Compact()
			}
			if snap.Epoch() != r.Epoch || uint64(snap.Live()) != r.Live {
				return i, fmt.Errorf("wal: replay record %d: marker says epoch %d with %d live, replay produced epoch %d with %d live",
					i, r.Epoch, r.Live, snap.Epoch(), snap.Live())
			}
		case recBatch:
			if batch != nil {
				if err := batch(r.BatchID, r.Status, r.Body); err != nil {
					return i, fmt.Errorf("wal: replay record %d: batch %q: %w", i, r.BatchID, err)
				}
			}
		default:
			return i, fmt.Errorf("wal: replay record %d: unknown type %d", i, r.Type)
		}
	}
	return len(records), nil
}
