package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
)

// fuzzSeedFrames builds one valid frame per record type — the seeds the
// committed corpus starts from.
func fuzzSeedFrames() [][]byte {
	recs := []Record{
		{Type: recInsert, Epoch: 3, ID: 41, Point: []float32{0.25, 1.5, -3}},
		{Type: recDelete, Epoch: 4, ID: 7},
		{Type: recFlush, Epoch: 5, Live: 1000},
		{Type: recCompact, Epoch: 6, Live: 999},
		{Type: recBatch, Epoch: 7, BatchID: "req-1", Status: 200, Body: []byte(`{"ids":[1]}`)},
	}
	var out [][]byte
	for i := range recs {
		payload, err := appendPayload(nil, &recs[i])
		if err != nil {
			panic(err)
		}
		out = append(out, appendFrame(nil, payload))
	}
	return out
}

// FuzzWALDecode throws arbitrary bytes at the frame decoder and checks the
// properties recovery depends on: it never panics, it consumes monotonic
// prefixes, every accepted record re-encodes to exactly the bytes it was
// decoded from (so the format is canonical), and a mutated accepted frame
// is rejected unless the mutation misses the consumed prefix.
func FuzzWALDecode(f *testing.F) {
	for _, frame := range fuzzSeedFrames() {
		f.Add(frame)
	}
	chain := []byte{}
	for _, frame := range fuzzSeedFrames() {
		chain = append(chain, frame...)
	}
	f.Add(chain)
	f.Add(chain[:len(chain)-3])           // torn tail
	f.Add([]byte{})                       // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length prefix
	f.Add(bytes.Repeat([]byte{0}, 64))    // zero frame: len 0 < 9
	f.Fuzz(func(t *testing.T, b []byte) {
		rest := b
		for len(rest) > 0 {
			r, next, err := DecodeFrame(rest)
			if err != nil {
				// The one distinction recovery relies on: a torn frame is
				// declared-length-exceeds-file, everything else corruption.
				break
			}
			consumed := rest[:len(rest)-len(next)]
			if len(next) >= len(rest) {
				t.Fatalf("decode consumed nothing (%d -> %d bytes)", len(rest), len(next))
			}

			// Canonical round trip: re-encoding the decoded record must
			// reproduce the consumed bytes exactly.
			payload, err := appendPayload(nil, &r)
			if err != nil {
				t.Fatalf("accepted record fails to re-encode: %v (%+v)", err, r)
			}
			if enc := appendFrame(nil, payload); !bytes.Equal(enc, consumed) {
				t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", consumed, enc)
			}
			r2, err := DecodePayload(payload)
			if err != nil {
				t.Fatalf("re-decoding canonical payload: %v", err)
			}
			if r2.Type != r.Type || r2.Epoch != r.Epoch || r2.ID != r.ID ||
				r2.Live != r.Live || r2.BatchID != r.BatchID || r2.Status != r.Status ||
				!bytes.Equal(r2.Body, r.Body) || len(r2.Point) != len(r.Point) {
				t.Fatalf("payload round trip diverged: %+v vs %+v", r, r2)
			}
			for i := range r.Point {
				if math.Float32bits(r.Point[i]) != math.Float32bits(r2.Point[i]) {
					t.Fatalf("point bits diverged at %d: %x vs %x",
						i, math.Float32bits(r.Point[i]), math.Float32bits(r2.Point[i]))
				}
			}

			// CRC integrity: flipping any payload byte must be rejected.
			if len(consumed) > frameHeaderSize {
				mut := append([]byte(nil), consumed...)
				mut[frameHeaderSize] ^= 0x01
				if _, _, err := DecodeFrame(mut); err == nil {
					want := binary.LittleEndian.Uint32(consumed[4:8])
					got := crc32.Checksum(mut[frameHeaderSize:], castagnoli)
					if got != want {
						t.Fatalf("payload mutation accepted (crc %x vs %x)", got, want)
					}
				}
			}
			rest = next
		}
	})
}
