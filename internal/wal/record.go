// Package wal is the durability subsystem: an append-only, CRC32C-framed
// record log of every accepted mutation and epoch advance, epoch-snapshot
// checkpoints that bound replay work, and crash recovery that restores a
// delta.Updater to its exact pre-crash state.
//
// On-disk layout, all little-endian, under one data directory per node:
//
//	wal-<seq>.log    segment: 8-byte magic "SKYWAL01", u64 seq, then frames
//	snap-<seq>.ck    checkpoint: "SKYSNP01", u64 tail seq, state, u32 CRC
//
// A frame is `u32 len | u32 crc32c(payload) | payload`; a payload is
// `u8 type | u64 epoch | body`. The checkpoint's name and header carry the
// seq of the segment created at its capture point, so "the WAL tail" is
// exactly the segments with seq >= that number — truncating the log after
// a checkpoint is deleting whole older segments, never rewriting one.
//
// Recovery (Open) loads the newest snapshot whose whole-file CRC verifies,
// rebuilds the updater at the checkpoint epoch, and replays the tail
// through the ordinary mutation path. A torn final record — a crash mid
// group commit — is truncated with a warning; a CRC-corrupt record with
// intact records after it means the disk lied, and recovery refuses to
// serve rather than guess.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Record types. The epoch stamp on mutations is the epoch current when the
// mutation was accepted (diagnostic); on markers it is the epoch produced.
const (
	recInsert  = 1 // body: i32 id, u16 dims, dims × f32
	recDelete  = 2 // body: i32 id
	recFlush   = 3 // body: u64 live at the produced epoch
	recCompact = 4 // body: u64 live at the produced epoch
	recBatch   = 5 // body: u16 idLen, id, u32 status, u32 bodyLen, body
)

// maxRecordSize bounds one frame's payload; a length prefix beyond it is
// corruption (or a torn length word), never a legitimate record.
const maxRecordSize = 1 << 26 // 64 MiB

// frameHeaderSize is the per-record framing overhead: u32 len + u32 crc.
const frameHeaderSize = 8

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded WAL record.
type Record struct {
	Type  byte
	Epoch uint64

	// ID/Point: recInsert (Point nil for recDelete).
	ID    int32
	Point []float32

	// Live: recFlush/recCompact.
	Live uint64

	// BatchID/Status/Body: recBatch — a remembered idempotent-insert reply.
	BatchID string
	Status  int
	Body    []byte
}

// appendPayload appends r's payload encoding (type, epoch, body) to dst.
func appendPayload(dst []byte, r *Record) ([]byte, error) {
	dst = append(dst, r.Type)
	dst = binary.LittleEndian.AppendUint64(dst, r.Epoch)
	switch r.Type {
	case recInsert:
		if len(r.Point) == 0 || len(r.Point) > math.MaxUint16 {
			return nil, fmt.Errorf("wal: insert record with %d dims", len(r.Point))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.ID))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Point)))
		for _, v := range r.Point {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	case recDelete:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.ID))
	case recFlush, recCompact:
		dst = binary.LittleEndian.AppendUint64(dst, r.Live)
	case recBatch:
		if len(r.BatchID) == 0 || len(r.BatchID) > math.MaxUint16 {
			return nil, fmt.Errorf("wal: batch record with %d-byte id", len(r.BatchID))
		}
		if len(r.Body) > maxRecordSize/2 {
			return nil, fmt.Errorf("wal: batch record body of %d bytes", len(r.Body))
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.BatchID)))
		dst = append(dst, r.BatchID...)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Status))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Body)))
		dst = append(dst, r.Body...)
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	return dst, nil
}

// appendFrame appends the framed encoding of payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// DecodePayload decodes one record payload (the bytes inside a verified
// frame). It never panics on corrupt input.
func DecodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 9 {
		return r, fmt.Errorf("wal: payload of %d bytes, need at least 9", len(p))
	}
	r.Type = p[0]
	r.Epoch = binary.LittleEndian.Uint64(p[1:9])
	body := p[9:]
	switch r.Type {
	case recInsert:
		if len(body) < 6 {
			return r, fmt.Errorf("wal: insert body of %d bytes", len(body))
		}
		r.ID = int32(binary.LittleEndian.Uint32(body[0:4]))
		dims := int(binary.LittleEndian.Uint16(body[4:6]))
		if dims == 0 || len(body) != 6+4*dims {
			return r, fmt.Errorf("wal: insert body of %d bytes for %d dims", len(body), dims)
		}
		r.Point = make([]float32, dims)
		for i := range r.Point {
			r.Point[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[6+4*i:]))
		}
	case recDelete:
		if len(body) != 4 {
			return r, fmt.Errorf("wal: delete body of %d bytes", len(body))
		}
		r.ID = int32(binary.LittleEndian.Uint32(body))
	case recFlush, recCompact:
		if len(body) != 8 {
			return r, fmt.Errorf("wal: marker body of %d bytes", len(body))
		}
		r.Live = binary.LittleEndian.Uint64(body)
	case recBatch:
		if len(body) < 2 {
			return r, fmt.Errorf("wal: batch body of %d bytes", len(body))
		}
		idLen := int(binary.LittleEndian.Uint16(body[0:2]))
		if idLen == 0 || len(body) < 2+idLen+8 {
			return r, fmt.Errorf("wal: batch body of %d bytes for %d-byte id", len(body), idLen)
		}
		r.BatchID = string(body[2 : 2+idLen])
		rest := body[2+idLen:]
		r.Status = int(binary.LittleEndian.Uint32(rest[0:4]))
		bodyLen := int(binary.LittleEndian.Uint32(rest[4:8]))
		if len(rest) != 8+bodyLen {
			return r, fmt.Errorf("wal: batch body declares %d reply bytes, has %d", bodyLen, len(rest)-8)
		}
		r.Body = append([]byte(nil), rest[8:]...)
	default:
		return r, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	return r, nil
}

// DecodeFrame decodes the first frame in b, returning the record and the
// remaining bytes. Errors distinguish a torn frame (errTorn: b ends before
// the declared length) from corruption (bad CRC, bad payload).
func DecodeFrame(b []byte) (Record, []byte, error) {
	if len(b) < frameHeaderSize {
		return Record{}, nil, errTorn
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	if n < 9 || n > maxRecordSize {
		return Record{}, nil, fmt.Errorf("wal: frame declares %d payload bytes", n)
	}
	if len(b) < frameHeaderSize+n {
		return Record{}, nil, errTorn
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	payload := b[frameHeaderSize : frameHeaderSize+n]
	if crc32.Checksum(payload, castagnoli) != want {
		return Record{}, nil, fmt.Errorf("wal: frame CRC mismatch")
	}
	r, err := DecodePayload(payload)
	if err != nil {
		return Record{}, nil, err
	}
	return r, b[frameHeaderSize+n:], nil
}

// errTorn marks an incomplete final frame: the file ends before the frame's
// declared length. It is the one decode failure recovery repairs silently
// (by truncating), because it is exactly what a crash mid-append leaves.
var errTorn = fmt.Errorf("wal: torn frame (file ends mid-record)")
