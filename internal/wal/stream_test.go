package wal_test

import (
	"errors"
	"strings"
	"testing"

	"skycube/internal/delta"
	"skycube/internal/gen"
	"skycube/internal/wal"
)

// TestSnapshotWireRoundTrip: EncodeSnapshot → DecodeSnapshot is lossless,
// and a flipped byte anywhere fails verification instead of decoding to a
// plausible-but-wrong state.
func TestSnapshotWireRoundTrip(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 40, 3, 21)
	st := delta.RestoreState{
		Dims: ds.Dims, Epoch: 7, Live: ds.N, Vals: ds.Vals[:ds.N*ds.Dims],
	}
	batches := map[string]wal.BatchReply{
		"req-a": {Status: 200, Body: []byte(`{"ids":[3]}`)},
		"req-b": {Status: 400, Body: []byte(`bad`)},
	}
	order := []string{"req-a", "req-b"}
	raw, err := wal.EncodeSnapshot(5, st, batches, order)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	ss, err := wal.DecodeSnapshot(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ss.TailSeq != 5 {
		t.Fatalf("tail seq %d, want 5", ss.TailSeq)
	}
	if ss.State.Epoch != st.Epoch || ss.State.Live != st.Live || ss.State.Dims != st.Dims {
		t.Fatalf("state header mangled: %+v", ss.State)
	}
	if len(ss.State.Vals) != len(st.Vals) {
		t.Fatalf("vals length %d, want %d", len(ss.State.Vals), len(st.Vals))
	}
	for i := range st.Vals {
		if ss.State.Vals[i] != st.Vals[i] {
			t.Fatalf("vals[%d] = %v, want %v", i, ss.State.Vals[i], st.Vals[i])
		}
	}
	if len(ss.BatchOrder) != 2 || ss.BatchOrder[0] != "req-a" || ss.BatchOrder[1] != "req-b" {
		t.Fatalf("batch order mangled: %v", ss.BatchOrder)
	}
	if rep := ss.Batches["req-a"]; rep.Status != 200 || string(rep.Body) != `{"ids":[3]}` {
		t.Fatalf("batch reply mangled: %+v", rep)
	}

	for _, off := range []int{0, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0xff
		if _, err := wal.DecodeSnapshot(bad); err == nil {
			t.Fatalf("flipped byte at %d decoded silently", off)
		}
	}
}

// TestRecordsWireRoundTrip: EncodeRecords → DecodeRecords preserves every
// record kind the tail feed carries, and a torn frame is an error (HTTP
// delivers whole bodies; there is no torn tail to repair on the wire).
func TestRecordsWireRoundTrip(t *testing.T) {
	recs := []wal.Record{
		{Type: 1, ID: 9, Epoch: 2, Point: []float32{1, 2, 3}},                 // insert
		{Type: 2, ID: 4, Epoch: 2},                                            // delete
		{Type: 3, Epoch: 3, Live: 41},                                         // flush
		{Type: 4, Epoch: 4, Live: 40},                                         // compact
		{Type: 5, BatchID: "req-x", Status: 200, Body: []byte(`{"ids":[1]}`)}, // batch reply
	}
	raw, err := wal.EncodeRecords(recs)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := wal.DecodeRecords(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		w := recs[i]
		if r.Type != w.Type || r.ID != w.ID || r.Epoch != w.Epoch ||
			r.Live != w.Live || r.BatchID != w.BatchID || r.Status != w.Status {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
	}
	if empty, err := wal.DecodeRecords(nil); err != nil || len(empty) != 0 {
		t.Fatalf("empty body: %v records, err %v", empty, err)
	}
	if _, err := wal.DecodeRecords(raw[:len(raw)-3]); err == nil {
		t.Fatal("torn frame decoded silently")
	}
}

// TestBootstrapEquivalence is the state-transfer contract behind a live
// join: StreamSnapshot + TailChain from a mutated source, WriteBootstrap
// into a fresh directory, and the ordinary recovery path boots a node whose
// every subspace skyline matches the source exactly.
func TestBootstrapEquivalence(t *testing.T) {
	srcDir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 60, 3, 22)
	wopt := wal.Options{Dir: srcDir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	defer func() { u.Close(); s.Close() }()
	mutate(t, u, 12, 3, 2201)
	mutate(t, u, 8, 2, 2202)
	want := fingerprint(u.Current())

	raw, seq, err := s.StreamSnapshot()
	if err != nil {
		t.Fatalf("stream snapshot: %v", err)
	}
	tail, total, err := s.TailChain(seq, 0)
	if err != nil {
		t.Fatalf("tail chain: %v", err)
	}
	if total != len(tail) {
		t.Fatalf("skip-0 chain total %d but %d records", total, len(tail))
	}
	if len(tail) == 0 {
		t.Fatal("expected a non-empty tail after mutations")
	}

	dstDir := t.TempDir()
	if err := wal.WriteBootstrap(dstDir, raw, tail); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	// A second bootstrap into the now-populated directory must refuse.
	if err := wal.WriteBootstrap(dstDir, raw, tail); err == nil {
		t.Fatal("bootstrap into a populated directory accepted")
	}
	u2, s2, replayed := openDurable(t, nil, wal.Options{Dir: dstDir, Fsync: wal.FsyncAlways, CheckpointEvery: -1})
	defer func() { u2.Close(); s2.Close() }()
	if replayed != len(tail) {
		t.Fatalf("replayed %d records, want %d", replayed, len(tail))
	}
	if got := fingerprint(u2.Current()); got != want {
		t.Fatalf("bootstrapped state diverged:\n got %s\nwant %s", got, want)
	}

	// WipeForRejoin resets the directory for a fresh transfer.
	u2.Close()
	s2.Close()
	if err := wal.WipeForRejoin(dstDir); err != nil {
		t.Fatalf("wipe: %v", err)
	}
	if err := wal.WriteBootstrap(dstDir, raw, tail); err != nil {
		t.Fatalf("re-bootstrap after wipe: %v", err)
	}
	u3, s3, _ := openDurable(t, nil, wal.Options{Dir: dstDir, Fsync: wal.FsyncAlways, CheckpointEvery: -1})
	defer func() { u3.Close(); s3.Close() }()
	if got := fingerprint(u3.Current()); got != want {
		t.Fatalf("re-bootstrapped state diverged:\n got %s\nwant %s", got, want)
	}
}

// TestTailChainCursor: the (from, skip) pair is a resumable cursor — each
// call with the previous total as skip yields exactly the records appended
// in between, never a duplicate; and a checkpoint that truncates segment
// `from` turns the cursor into ErrTailTruncated, the restart-from-snapshot
// signal.
func TestTailChainCursor(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Synthetic(gen.Independent, 40, 3, 23)
	wopt := wal.Options{Dir: dir, Fsync: wal.FsyncAlways, CheckpointEvery: -1}
	u, s, _ := openDurable(t, ds, wopt)
	defer func() { u.Close(); s.Close() }()

	_, seq, err := s.StreamSnapshot()
	if err != nil {
		t.Fatalf("stream snapshot: %v", err)
	}
	mutate(t, u, 5, 1, 2301)
	first, total1, err := s.TailChain(seq, 0)
	if err != nil {
		t.Fatalf("first pull: %v", err)
	}
	if len(first) != total1 || total1 == 0 {
		t.Fatalf("first pull: %d records, total %d", len(first), total1)
	}
	mutate(t, u, 4, 0, 2302)
	second, total2, err := s.TailChain(seq, total1)
	if err != nil {
		t.Fatalf("second pull: %v", err)
	}
	if total2 != total1+len(second) || len(second) == 0 {
		t.Fatalf("second pull: %d records, totals %d -> %d", len(second), total1, total2)
	}
	// A caught-up cursor pulls nothing.
	none, total3, err := s.TailChain(seq, total2)
	if err != nil || len(none) != 0 || total3 != total2 {
		t.Fatalf("caught-up pull: %d records, total %d, err %v", len(none), total3, err)
	}
	// A skip beyond the chain is a hard error, not silence.
	if _, _, err := s.TailChain(seq, total2+10); err == nil {
		t.Fatal("over-long skip accepted")
	}
	// from=0 and from beyond the active segment are malformed cursors.
	if _, _, err := s.TailChain(0, 0); err == nil {
		t.Fatal("from=0 accepted")
	}
	if _, _, err := s.TailChain(s.Seq()+1, 0); err == nil {
		t.Fatal("future segment accepted")
	}

	// A checkpoint truncates the chain the cursor names.
	if err := s.Checkpoint(u); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if _, _, err := s.TailChain(seq, total2); !errors.Is(err, wal.ErrTailTruncated) {
		t.Fatalf("stale cursor after checkpoint: err %v, want ErrTailTruncated", err)
	}
	// The refreshed snapshot names a live segment again.
	_, seq2, err := s.StreamSnapshot()
	if err != nil {
		t.Fatalf("refreshed snapshot: %v", err)
	}
	if rest, _, err := s.TailChain(seq2, 0); err != nil || len(rest) != 0 {
		t.Fatalf("fresh cursor: %d records, err %v", len(rest), err)
	}
}

// TestBootstrapRejectsGarbage: WriteBootstrap verifies the snapshot bytes
// before touching the directory.
func TestBootstrapRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	err := wal.WriteBootstrap(dir, []byte("not a snapshot"), nil)
	if err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if segs, snaps := segFiles(t, dir), snapFiles(t, dir); len(segs) != 0 || len(snaps) != 0 {
		t.Fatalf("garbage bootstrap left files: %v %v", segs, snaps)
	}
	if !strings.Contains(err.Error(), "bootstrap snapshot") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Sanity: WipeForRejoin on a directory that never existed is a no-op.
	if err := wal.WipeForRejoin(dir + "/nope"); err != nil {
		t.Fatalf("wipe of missing dir: %v", err)
	}
}
