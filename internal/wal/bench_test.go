package wal_test

import (
	"fmt"
	"testing"
	"time"

	"skycube/internal/delta"
	"skycube/internal/gen"
	"skycube/internal/wal"
)

// BenchmarkWALAppend measures the append path alone — encode, frame,
// buffered write — with no fsync in the loop (the commit cost is the
// policy's, measured separately below).
func BenchmarkWALAppend(b *testing.B) {
	s, _, err := wal.Open(wal.Options{Dir: b.TempDir(), Fsync: wal.FsyncNever, CheckpointEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	point := []float32{0.1, 0.2, 0.3, 0.4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.LogInsert(1, int32(i), point); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALCommit measures one append + Commit round per iteration
// under each fsync policy: "always" pays a (group-committed) fsync,
// "interval" and "never" only a buffer flush.
func BenchmarkWALCommit(b *testing.B) {
	for _, policy := range []string{wal.FsyncAlways, wal.FsyncInterval, wal.FsyncNever} {
		b.Run(policy, func(b *testing.B) {
			s, _, err := wal.Open(wal.Options{
				Dir: b.TempDir(), Fsync: policy,
				SyncInterval: time.Second, CheckpointEvery: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			point := []float32{0.1, 0.2, 0.3, 0.4}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.LogInsert(1, int32(i), point); err != nil {
					b.Fatal(err)
				}
				if err := s.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures Open + NewUpdaterFrom + Replay over a
// directory with one checkpoint and a tail of insert/flush records.
func BenchmarkRecovery(b *testing.B) {
	for _, tail := range []int{64, 512} {
		b.Run(fmt.Sprintf("tail=%d", tail), func(b *testing.B) {
			dir := b.TempDir()
			ds := gen.Synthetic(gen.Independent, 200, 4, 1)
			dopt := delta.Options{Threads: 2}
			wopt := wal.Options{Dir: dir, Fsync: wal.FsyncNever, CheckpointEvery: -1}
			s, _, err := wal.Open(wopt)
			if err != nil {
				b.Fatal(err)
			}
			u, err := delta.NewUpdaterFrom(delta.RestoreState{
				Dims: ds.Dims, Epoch: 1, Live: ds.N, Vals: ds.Vals[:ds.N*ds.Dims],
			}, dopt)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Checkpoint(u); err != nil {
				b.Fatal(err)
			}
			u.AttachJournal(s)
			s.AttachUpdater(u)
			extra := gen.Synthetic(gen.Independent, tail, 4, 2)
			for i := 0; i < extra.N; i++ {
				if _, err := u.Insert(extra.Point(i)); err != nil {
					b.Fatal(err)
				}
				if i%32 == 31 {
					u.Flush()
				}
			}
			u.Flush()
			u.Close()
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, rec, err := wal.Open(wopt)
				if err != nil {
					b.Fatal(err)
				}
				u2, err := delta.NewUpdaterFrom(rec.State, dopt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s2.Replay(u2); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				u2.Close()
				s2.Close()
				b.StartTimer()
			}
		})
	}
}
