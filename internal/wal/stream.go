package wal

// Streaming: the checkpoint and frame formats double as the wire format
// for moving state between nodes. A source shard serves its newest
// checkpoint bytes verbatim (GET /shard/snapshot) plus the framed records
// of the segments after it (GET /shard/tail), and a joining replica
// materializes a local data directory from the pair — after which the
// ordinary Open/Replay recovery path boots it, exactly as if the bytes had
// always been local.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"skycube/internal/delta"
)

// SnapshotStream is a decoded snapshot received (or about to be served)
// over the wire — the same content as a checkpoint file.
type SnapshotStream struct {
	// TailSeq is the WAL segment seq the snapshot pairs with: records in
	// segments >= TailSeq postdate the captured state.
	TailSeq uint64
	// State rebuilds an updater via delta.NewUpdaterFrom.
	State delta.RestoreState
	// Batches and BatchOrder carry the idempotent-insert reply mirror in
	// remembered (eviction) order.
	Batches    map[string]BatchReply
	BatchOrder []string
}

// EncodeSnapshot serializes a snapshot in the checkpoint wire format (the
// bytes are valid checkpoint-file contents, trailing CRC included).
func EncodeSnapshot(tailSeq uint64, st delta.RestoreState,
	batches map[string]BatchReply, batchOrder []string) ([]byte, error) {
	var buf bytes.Buffer
	w := &crcWriter{w: &buf}
	encodeSnapshotBody(w, tailSeq, st, batches, batchOrder)
	if w.err != nil {
		return nil, w.err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot verifies (whole-stream CRC, field bounds) and decodes
// snapshot bytes received over the wire.
func DecodeSnapshot(raw []byte) (*SnapshotStream, error) {
	sd, err := decodeSnapshot(raw, "snapshot stream")
	if err != nil {
		return nil, err
	}
	return &SnapshotStream{
		TailSeq:    sd.tailSeq,
		State:      sd.state,
		Batches:    sd.batches,
		BatchOrder: sd.batchOrder,
	}, nil
}

// EncodeRecords serializes records as a run of CRC-framed WAL frames — the
// tail feed's wire format, identical to segment contents after the header.
func EncodeRecords(records []Record) ([]byte, error) {
	var out []byte
	for i := range records {
		payload, err := appendPayload(nil, &records[i])
		if err != nil {
			return nil, err
		}
		out = appendFrame(out, payload)
	}
	return out, nil
}

// DecodeRecords decodes a run of framed records (the body of a tail-feed
// response). Any torn or corrupt frame is an error — the transport below
// this is HTTP, which either delivers the bytes or fails the request, so
// there is no torn tail to repair.
func DecodeRecords(b []byte) ([]Record, error) {
	var recs []Record
	for len(b) > 0 {
		r, rest, err := DecodeFrame(b)
		if err != nil {
			return nil, fmt.Errorf("wal: tail stream record %d: %w", len(recs), err)
		}
		recs = append(recs, r)
		b = rest
	}
	return recs, nil
}

// ErrTailTruncated reports that a requested tail chain starts before the
// oldest segment still on disk — a checkpoint truncated it away. The
// caller must restart from a fresh snapshot.
var ErrTailTruncated = errors.New("wal: tail segments truncated by a checkpoint; re-fetch the snapshot")

// Seq returns the active segment's sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// SnapshotSeq returns the seq of the newest on-disk checkpoint (0 when no
// checkpoint has been written yet).
func (s *Store) SnapshotSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapSeq
}

// Records returns how many records this store appended over its lifetime
// (not counting records replayed from disk at open).
func (s *Store) Records() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// TailChain decodes every record in the contiguous segment run from seq
// `from` through the active segment, skipping the first `skip` records.
// It returns the remaining records and the chain's total record count —
// the caller's next `skip`. The pair (from, skip) is a resumable cursor:
// repeated calls with the returned total as the new skip yield exactly the
// records appended in between, never a duplicate.
//
// ErrTailTruncated means a checkpoint deleted segment `from`; the caller
// must restart from a fresh snapshot (whose TailSeq names a live segment).
func (s *Store) TailChain(from uint64, skip int) ([]Record, int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, errors.New("wal: store closed")
	}
	if err := s.flushLocked(); err != nil {
		s.mu.Unlock()
		return nil, 0, err
	}
	active := s.seq
	var activeRaw []byte
	var readErr error
	if from > 0 && from <= active {
		// Read the active segment while holding the append lock: the flush
		// above made every appended frame visible, and no append can land
		// mid-read, so the image never ends in a torn frame.
		activeRaw, readErr = os.ReadFile(filepath.Join(s.dir, segName(active)))
	}
	s.mu.Unlock()
	if from == 0 || from > active {
		return nil, 0, fmt.Errorf("wal: tail chain from segment %d, active segment is %d", from, active)
	}
	if readErr != nil {
		return nil, 0, readErr
	}

	var all []Record
	for seq := from; seq < active; seq++ {
		recs, _, err := decodeSegmentFile(filepath.Join(s.dir, segName(seq)), seq)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, 0, ErrTailTruncated
			}
			return nil, 0, fmt.Errorf("wal: tail chain segment %d: %w", seq, err)
		}
		all = append(all, recs...)
	}
	recs, _, err := decodeSegmentBytes(activeRaw, active)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: tail chain active segment %d: %w", active, err)
	}
	all = append(all, recs...)

	total := len(all)
	if skip < 0 {
		skip = 0
	}
	if skip > total {
		return nil, total, fmt.Errorf("wal: tail chain skip %d beyond the chain's %d records", skip, total)
	}
	return all[skip:], total, nil
}

// StreamSnapshot returns the newest on-disk checkpoint's verbatim bytes
// and its tail seq. The (bytes, seq) pair with TailChain(seq, 0) is a
// complete, consistent state transfer. Callers wanting a freshly pinned
// epoch run Checkpoint first. A checkpoint racing the read is retried — it
// only ever replaces the snapshot with a newer one.
func (s *Store) StreamSnapshot() ([]byte, uint64, error) {
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		seq := s.snapSeq
		s.mu.Unlock()
		if seq == 0 {
			return nil, 0, errors.New("wal: no checkpoint on disk yet")
		}
		raw, err := os.ReadFile(filepath.Join(s.dir, snapName(seq)))
		if err == nil {
			return raw, seq, nil
		}
		if !errors.Is(err, os.ErrNotExist) || attempt >= 3 {
			return nil, 0, err
		}
	}
}

// WriteBootstrap materializes a data directory from a streamed state
// transfer: the snapshot bytes are written verbatim as the checkpoint
// file, and the tail records become the segment the snapshot names. The
// directory must hold no WAL state. Afterwards the ordinary Open/Replay
// recovery path boots the node exactly as if it had crashed locally with
// that state.
func WriteBootstrap(dir string, rawSnapshot []byte, tail []Record) error {
	sd, err := decodeSnapshot(rawSnapshot, "bootstrap snapshot")
	if err != nil {
		return err
	}
	if sd.tailSeq == 0 {
		return errors.New("wal: bootstrap snapshot names segment 0")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return err
	}
	if len(segs) > 0 || len(snaps) > 0 {
		return fmt.Errorf("wal: bootstrap into %s: directory already holds WAL state", dir)
	}

	// Segment first, snapshot last: recovery requires the tail segment
	// named by a snapshot to exist, so the reverse order has a crash window
	// that leaves an unrecoverable directory.
	f, err := createSegment(dir, sd.tailSeq)
	if err != nil {
		return err
	}
	frames, err := EncodeRecords(tail)
	if err != nil {
		f.Close()
		return err
	}
	if len(frames) > 0 {
		if _, err := f.Write(frames); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	final := filepath.Join(dir, snapName(sd.tailSeq))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, rawSnapshot, 0o644); err != nil {
		return err
	}
	if err := syncFile(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// WipeForRejoin deletes every WAL segment and snapshot in dir, preparing
// it for a fresh WriteBootstrap. A restarted replica that finds itself
// behind its peers discards its stale state this way and re-bootstraps
// from a peer's stream. The caller must hold no open Store on the
// directory.
func WipeForRejoin(dir string) error {
	segs, snaps, err := scanDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, seq := range segs {
		if err := os.Remove(filepath.Join(dir, segName(seq))); err != nil {
			return err
		}
	}
	for _, seq := range snaps {
		if err := os.Remove(filepath.Join(dir, snapName(seq))); err != nil {
			return err
		}
	}
	return syncDir(dir)
}
