package mask

import (
	"math/bits"
	"testing"
)

// FuzzMaskSubspaces checks the structural invariants of the subspace
// bitmask algebra for arbitrary masks: SubmasksOf enumerates every
// non-empty submask exactly once in descending order, Parents/Children are
// exact level neighbours, Project compacts onto the low bits, and Dims
// round-trips.
func FuzzMaskSubspaces(f *testing.F) {
	f.Add(uint8(1), uint32(1))
	f.Add(uint8(4), uint32(0b1011))
	f.Add(uint8(6), uint32(0b111111))
	f.Add(uint8(12), uint32(0xACE))
	f.Add(uint8(3), uint32(0))
	f.Fuzz(func(t *testing.T, dRaw uint8, mRaw uint32) {
		d := 1 + int(dRaw)%12 // ≤ 4096 submasks per exec
		m := Mask(mRaw) & Full(d)

		if got := Count(m); got != bits.OnesCount32(m) {
			t.Fatalf("Count(%b) = %d, want %d", m, got, bits.OnesCount32(m))
		}

		// SubmasksOf: descending, exactly once, all ⊆ m, none empty, and
		// exactly 2^|m| − 1 of them.
		seen := map[Mask]bool{}
		prev := Mask(0)
		first := true
		SubmasksOf(m, func(s Mask) bool {
			if s == 0 {
				t.Fatal("empty submask enumerated")
			}
			if !Contains(m, s) {
				t.Fatalf("submask %b ⊄ %b", s, m)
			}
			if !first && s >= prev {
				t.Fatalf("submasks not descending: %b after %b", s, prev)
			}
			if seen[s] {
				t.Fatalf("submask %b enumerated twice", s)
			}
			seen[s] = true
			prev, first = s, false
			return true
		})
		if want := (1 << uint(Count(m))) - 1; len(seen) != want {
			t.Fatalf("enumerated %d submasks of %b, want %d", len(seen), m, want)
		}

		// Early stop: the callback returning false enumerates exactly one.
		calls := 0
		SubmasksOf(m, func(Mask) bool { calls++; return false })
		if m != 0 && calls != 1 {
			t.Fatalf("early stop made %d calls", calls)
		}

		if m == 0 {
			return
		}

		// Parents: one per unset dimension, each a superset one level up.
		parents := Parents(m, d)
		if len(parents) != d-Count(m) {
			t.Fatalf("|Parents(%b)| = %d, want %d", m, len(parents), d-Count(m))
		}
		for _, p := range parents {
			if !Contains(p, m) || Count(p) != Count(m)+1 {
				t.Fatalf("parent %b of %b is not one level up", p, m)
			}
		}

		// Children: one per set dimension, each a subset one level down.
		children := Children(m)
		wantKids := Count(m)
		if Count(m) == 1 {
			wantKids = 0 // the empty subspace is not a cuboid
		}
		if len(children) != wantKids {
			t.Fatalf("|Children(%b)| = %d, want %d", m, len(children), wantKids)
		}
		for _, c := range children {
			if !Contains(m, c) || Count(c) != Count(m)-1 {
				t.Fatalf("child %b of %b is not one level down", c, m)
			}
		}

		// Project: m projected onto itself fills the low Count(m) bits; any
		// projection stays within them and preserves popcount of m∩δ.
		if got, want := Project(m, m), Full(Count(m)); got != want {
			t.Fatalf("Project(%b, itself) = %b, want %b", m, got, want)
		}
		delta := Mask(mRaw>>7) & Full(d)
		proj := Project(m, delta)
		if proj&^Full(Count(delta)) != 0 {
			t.Fatalf("Project(%b, %b) = %b overflows %d low bits", m, delta, proj, Count(delta))
		}
		if Count(proj) != Count(m&delta) {
			t.Fatalf("Project(%b, %b) lost bits: %b", m, delta, proj)
		}

		// Dims round-trips through Bit.
		var rebuilt Mask
		for _, i := range Dims(m) {
			rebuilt |= Bit(i)
		}
		if rebuilt != m {
			t.Fatalf("Dims(%b) rebuilt to %b", m, rebuilt)
		}
	})
}
