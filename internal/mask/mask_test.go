package mask

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestFull(t *testing.T) {
	cases := []struct {
		d    int
		want Mask
	}{{1, 1}, {2, 3}, {3, 7}, {4, 15}, {12, 4095}, {16, 65535}}
	for _, c := range cases {
		if got := Full(c.d); got != c.want {
			t.Errorf("Full(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestCountAndContains(t *testing.T) {
	if Count(0b1011) != 3 {
		t.Errorf("Count(1011b) = %d, want 3", Count(0b1011))
	}
	if !Contains(0b111, 0b101) {
		t.Error("111b should contain 101b")
	}
	if Contains(0b101, 0b111) {
		t.Error("101b should not contain 111b")
	}
	if !Contains(0b101, 0b101) {
		t.Error("a subspace contains itself")
	}
}

func TestSubspaces(t *testing.T) {
	s := Subspaces(3)
	if len(s) != 7 {
		t.Fatalf("len(Subspaces(3)) = %d, want 7", len(s))
	}
	for i, m := range s {
		if m != Mask(i+1) {
			t.Errorf("Subspaces(3)[%d] = %d, want %d", i, m, i+1)
		}
	}
}

func TestLevel(t *testing.T) {
	l2 := Level(3, 2)
	want := []Mask{0b011, 0b101, 0b110}
	if len(l2) != len(want) {
		t.Fatalf("Level(3,2) = %v, want %v", l2, want)
	}
	for i := range want {
		if l2[i] != want[i] {
			t.Errorf("Level(3,2)[%d] = %b, want %b", i, l2[i], want[i])
		}
	}
	if got := Level(3, 0); got != nil {
		t.Errorf("Level(3,0) = %v, want nil", got)
	}
	if got := Level(3, 4); got != nil {
		t.Errorf("Level(3,4) = %v, want nil", got)
	}
}

func TestLevelCoversAllSubspaces(t *testing.T) {
	for d := 1; d <= 10; d++ {
		seen := make(map[Mask]bool)
		total := 0
		for l := 1; l <= d; l++ {
			masks := Level(d, l)
			if len(masks) != Binomial(d, l) {
				t.Fatalf("d=%d l=%d: %d masks, want C(%d,%d)=%d",
					d, l, len(masks), d, l, Binomial(d, l))
			}
			for _, m := range masks {
				if Count(m) != l {
					t.Fatalf("d=%d l=%d: mask %b has popcount %d", d, l, m, Count(m))
				}
				if seen[m] {
					t.Fatalf("d=%d: duplicate mask %b", d, m)
				}
				seen[m] = true
			}
			total += len(masks)
		}
		if total != NumSubspaces(d) {
			t.Fatalf("d=%d: levels cover %d subspaces, want %d", d, total, NumSubspaces(d))
		}
	}
}

func TestLevelsOrder(t *testing.T) {
	lv := Levels(4)
	if len(lv) != 4 {
		t.Fatalf("Levels(4) has %d layers, want 4", len(lv))
	}
	if len(lv[0]) != 1 || lv[0][0] != Full(4) {
		t.Errorf("Levels(4)[0] = %v, want [%d]", lv[0], Full(4))
	}
	if len(lv[3]) != 4 {
		t.Errorf("bottom layer has %d subspaces, want 4", len(lv[3]))
	}
}

func TestParentsChildren(t *testing.T) {
	p := Parents(0b011, 3)
	if len(p) != 1 || p[0] != 0b111 {
		t.Errorf("Parents(011b, 3) = %v, want [111b]", p)
	}
	p = Parents(0b001, 3)
	if len(p) != 2 {
		t.Errorf("Parents(001b, 3) = %v, want 2 parents", p)
	}
	c := Children(0b111)
	if len(c) != 3 {
		t.Errorf("Children(111b) = %v, want 3 children", c)
	}
	c = Children(0b001)
	if len(c) != 0 {
		t.Errorf("Children(001b) = %v, want none", c)
	}
}

func TestParentChildDuality(t *testing.T) {
	d := 6
	for _, delta := range Subspaces(d) {
		for _, par := range Parents(delta, d) {
			found := false
			for _, ch := range Children(par) {
				if ch == delta {
					found = true
				}
			}
			if !found {
				t.Fatalf("δ=%b has parent %b whose children omit it", delta, par)
			}
		}
	}
}

func TestSubmasksOf(t *testing.T) {
	var got []Mask
	SubmasksOf(0b101, func(m Mask) bool {
		got = append(got, m)
		return true
	})
	want := []Mask{0b101, 0b100, 0b001}
	if len(got) != len(want) {
		t.Fatalf("SubmasksOf(101b) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SubmasksOf(101b)[%d] = %b, want %b", i, got[i], want[i])
		}
	}
	SubmasksOf(0, func(Mask) bool {
		t.Error("SubmasksOf(0) should not call fn")
		return true
	})
}

func TestSubmasksOfEarlyStop(t *testing.T) {
	n := 0
	SubmasksOf(0b1111, func(Mask) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop after %d calls, want 3", n)
	}
}

func TestSubmasksCountProperty(t *testing.T) {
	f := func(m8 uint8) bool {
		m := Mask(m8)
		if m == 0 {
			return true
		}
		n := 0
		SubmasksOf(m, func(s Mask) bool {
			if s&^m != 0 {
				return false // not a submask: fail via count mismatch
			}
			n++
			return true
		})
		return n == (1<<uint(Count(m)))-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProject(t *testing.T) {
	// δ = 0b1010 selects dims 1 and 3; m = 0b1000 has only dim 3 set.
	if got := Project(0b1000, 0b1010); got != 0b10 {
		t.Errorf("Project(1000b, 1010b) = %b, want 10b", got)
	}
	if got := Project(0b0010, 0b1010); got != 0b01 {
		t.Errorf("Project(0010b, 1010b) = %b, want 01b", got)
	}
	if got := Project(0b1111, 0b1010); got != 0b11 {
		t.Errorf("Project(1111b, 1010b) = %b, want 11b", got)
	}
}

func TestProjectPopcountProperty(t *testing.T) {
	f := func(m16, d16 uint16) bool {
		m, delta := Mask(m16), Mask(d16)
		p := Project(m, delta)
		return Count(p) == bits.OnesCount32(m&delta) && p < 1<<uint(Count(delta))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDims(t *testing.T) {
	d := Dims(0b1011)
	want := []int{0, 1, 3}
	if len(d) != len(want) {
		t.Fatalf("Dims(1011b) = %v", d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Dims(1011b)[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{16, 8, 12870}, {12, 6, 924}, {4, 2, 6}, {5, 0, 1}, {5, 5, 1}, {3, 4, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}
