// Package mask implements the subspace-bitmask algebra used throughout the
// skycube algorithms (paper §2.1).
//
// A subspace of a d-dimensional data space is represented by a bitmask δ of
// type Mask in which bit i is set iff the subspace includes dimension i.
// Valid non-empty subspaces are 1 ≤ δ < 2^d. The same representation is used
// for per-dimension point relationships (B_{p<q}, B_{p=q}, …) and for the
// path labels of the static partitioning tree.
package mask

import "math/bits"

// MaxDims is the largest supported dimensionality. The paper evaluates up to
// d = 16; masks are stored as 32-bit words, so anything ≤ 32 works, but the
// per-point solution bitmasks (2^d − 1 bits) make d much beyond 20
// impractical.
const MaxDims = 20

// Mask is a subspace or per-dimension relationship bitmask over ≤ MaxDims
// dimensions.
type Mask = uint32

// Full returns the mask with the d low bits set: the full data space.
func Full(d int) Mask {
	return Mask(1)<<uint(d) - 1
}

// Bit returns the mask containing only dimension i.
func Bit(i int) Mask {
	return Mask(1) << uint(i)
}

// Count returns |δ|, the number of active dimensions in δ.
func Count(m Mask) int {
	return bits.OnesCount32(m)
}

// Contains reports whether δ′ is a subspace of δ, i.e. (δ & δ′) == δ′.
func Contains(delta, sub Mask) bool {
	return delta&sub == sub
}

// NumSubspaces returns 2^d − 1, the number of non-empty subspaces of a
// d-dimensional space.
func NumSubspaces(d int) int {
	return (1 << uint(d)) - 1
}

// Subspaces returns every non-empty subspace of the d-dimensional space in
// ascending numeric order: 1, 2, …, 2^d − 1.
func Subspaces(d int) []Mask {
	out := make([]Mask, NumSubspaces(d))
	for i := range out {
		out[i] = Mask(i + 1)
	}
	return out
}

// Level returns all subspaces δ with |δ| = l over d dimensions, in ascending
// numeric order. It enumerates the C(d, l) masks directly using Gosper's
// hack rather than filtering all 2^d masks.
func Level(d, l int) []Mask {
	if l <= 0 || l > d {
		return nil
	}
	out := make([]Mask, 0, binomial(d, l))
	v := Full(l) // smallest mask with l bits set
	limit := Mask(1) << uint(d)
	for v < limit {
		out = append(out, v)
		// Gosper's hack: next mask with the same popcount.
		c := v & -v
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
	}
	return out
}

// Levels returns the lattice layers from top (|δ| = d) to bottom (|δ| = 1):
// Levels(d)[0] is the single full-space mask and Levels(d)[d−1] the d
// singleton subspaces. This is the traversal order of the top-down
// lattice-based algorithms.
func Levels(d int) [][]Mask {
	out := make([][]Mask, d)
	for l := d; l >= 1; l-- {
		out[d-l] = Level(d, l)
	}
	return out
}

// Parents returns the immediate superspaces of δ within d dimensions: every
// mask obtained by setting exactly one unset bit of δ.
func Parents(delta Mask, d int) []Mask {
	missing := Full(d) &^ delta
	out := make([]Mask, 0, Count(missing))
	for missing != 0 {
		b := missing & -missing
		out = append(out, delta|b)
		missing &^= b
	}
	return out
}

// Children returns the immediate subspaces of δ: every non-empty mask
// obtained by clearing exactly one set bit of δ.
func Children(delta Mask) []Mask {
	out := make([]Mask, 0, Count(delta))
	rem := delta
	for rem != 0 {
		b := rem & -rem
		if c := delta &^ b; c != 0 {
			out = append(out, c)
		}
		rem &^= b
	}
	return out
}

// SubmasksOf calls fn for every non-empty submask of m, including m itself.
// Iteration stops early if fn returns false. The standard (s−1)&m walk
// enumerates submasks in descending numeric order.
func SubmasksOf(m Mask, fn func(Mask) bool) {
	if m == 0 {
		return
	}
	for s := m; ; s = (s - 1) & m {
		if !fn(s) {
			return
		}
		if s == 0 { // unreachable: loop exits below before reaching 0
			return
		}
		if s == m&-m { // smallest non-empty submask processed; stop
			return
		}
	}
}

// Project compacts the dimensions selected by δ into the low bits of m:
// bit j of the result is bit i of m where i is the j'th set dimension of δ.
// Used when re-partitioning data on only the relevant dimensions.
func Project(m, delta Mask) Mask {
	var out Mask
	j := 0
	for rem := delta; rem != 0; rem &^= rem & -rem {
		i := bits.TrailingZeros32(rem)
		if m&(1<<uint(i)) != 0 {
			out |= 1 << uint(j)
		}
		j++
	}
	return out
}

// Dims returns the indices of the set dimensions of δ in ascending order.
func Dims(delta Mask) []int {
	out := make([]int, 0, Count(delta))
	for rem := delta; rem != 0; rem &^= rem & -rem {
		out = append(out, bits.TrailingZeros32(rem))
	}
	return out
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

// Binomial returns C(n, k), the width of lattice level k over n dimensions.
func Binomial(n, k int) int {
	return binomial(n, k)
}
