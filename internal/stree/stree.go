// Package stree builds the static, globally-pivoted partitioning tree that
// MDMC shares read-only across all devices (paper §4.3, Fig. 3), and that
// the Hybrid skyline algorithm uses in its two-level form (paper §5.1).
//
// Unlike the recursive trees of BSkyTree/OSP/VMPSP, the pivots here are
// defined globally — the per-dimension median, quartiles and octiles of the
// whole input — so a point's complete path is known from its own
// coordinates without any dominance tests, and the per-level path labels of
// two points can be compared with pure bitwise operations. The paper adds a
// third (octile) level to SkyAlign's two so each dimension carries more
// pruning information in low-dimensional subspaces.
//
// Physically, all masks live in flat arrays sorted in leaf order — a
// reverse lookup from point to tree node — so scans are sequential and, on
// the GPU device model, coalesced. Only the top median level is kept as a
// node array with child ranges.
package stree

import (
	"fmt"
	"sort"

	"skycube/internal/data"
	"skycube/internal/mask"
)

// Node is a contiguous run of leaf-sorted positions sharing a path label.
type Node struct {
	Start, End int32     // half-open range of sorted positions
	Label      mask.Mask // this level's path label (strictly-below-pivot mask)
}

// Len returns the number of points under the node.
func (n Node) Len() int { return int(n.End - n.Start) }

// Tree is the static partitioning tree over a dataset.
type Tree struct {
	// Depth is 2 (median+quartile, SkyAlign) or 3 (adds octiles, the
	// paper's skycube variant).
	Depth int
	// Data is the leaf-sorted copy of the input. Data.IDs preserve the
	// original external ids.
	Data *data.Dataset
	// Cols is the column-major mirror of Data (Cols[j][i] == Data.Value(i, j)),
	// the SoA view the block refine kernel (dom.CompareBlock) sweeps: a leaf
	// range is contiguous in every column, so one query point against a leaf
	// chunk is d sequential column scans.
	Cols [][]float32
	// SrcRow[i] is the input row stored at sorted position i.
	SrcRow []int32
	// Med, Quart, Oct hold per-sorted-position path labels: bit j of Med[i]
	// is set iff point i is strictly below the global median on dimension
	// j; Quart is relative to the point's own half's quartile; Oct (depth-3
	// only) relative to its own quarter's octile.
	Med, Quart, Oct []mask.Mask
	// L1 are the median-level nodes (distinct Med labels); L1Child[k] is
	// the half-open range of L2 nodes under L1[k]. L2 likewise points into
	// Leaves. For depth 2, Leaves == L2 ranges with zero Oct labels.
	L1      []Node
	L1Child [][2]int32
	L2      []Node
	L2Child [][2]int32
	Leaves  []Node

	// Pivots, retained so unseen points can be routed (tests, queries):
	// MedPivot[j]; QuartPivot[h][j] for half h; OctPivot[q][j] for quarter q.
	MedPivot   []float32
	QuartPivot [2][]float32
	OctPivot   [4][]float32
}

// Build constructs a depth-level tree over ds. depth must be 2 or 3.
func Build(ds *data.Dataset, depth int) *Tree {
	if depth != 2 && depth != 3 {
		panic(fmt.Sprintf("stree: depth %d not in {2,3}", depth))
	}
	d, n := ds.Dims, ds.N
	t := &Tree{Depth: depth}

	// Per-dimension order statistics via a single sort per dimension.
	t.MedPivot = make([]float32, d)
	t.QuartPivot[0] = make([]float32, d)
	t.QuartPivot[1] = make([]float32, d)
	for q := range t.OctPivot {
		t.OctPivot[q] = make([]float32, d)
	}
	col := make([]float32, n)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			col[i] = ds.Value(i, j)
		}
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		t.MedPivot[j] = col[n/2]
		t.QuartPivot[0][j] = col[n/4]
		t.QuartPivot[1][j] = col[min(3*n/4, n-1)]
		t.OctPivot[0][j] = col[n/8]
		t.OctPivot[1][j] = col[min(3*n/8, n-1)]
		t.OctPivot[2][j] = col[min(5*n/8, n-1)]
		t.OctPivot[3][j] = col[min(7*n/8, n-1)]
	}

	// Route every point: compute its three path labels.
	med := make([]mask.Mask, n)
	quart := make([]mask.Mask, n)
	oct := make([]mask.Mask, n)
	for i := 0; i < n; i++ {
		p := ds.Point(i)
		var m, q, o mask.Mask
		for j := 0; j < d; j++ {
			v := p[j]
			half := 1
			if v < t.MedPivot[j] {
				m |= 1 << uint(j)
				half = 0
			}
			quarter := half * 2
			if v < t.QuartPivot[half][j] {
				q |= 1 << uint(j)
			} else {
				quarter++
			}
			if depth == 3 && v < t.OctPivot[quarter][j] {
				o |= 1 << uint(j)
			}
		}
		med[i], quart[i], oct[i] = m, q, o
	}

	// Leaf-sort: order points by (med, quart, oct).
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if med[ia] != med[ib] {
			return med[ia] < med[ib]
		}
		if quart[ia] != quart[ib] {
			return quart[ia] < quart[ib]
		}
		return oct[ia] < oct[ib]
	})

	rows := make([]int, n)
	for i, r := range order {
		rows[i] = int(r)
	}
	t.SrcRow = order
	t.Data = ds.Subset(rows)
	t.Med = make([]mask.Mask, n)
	t.Quart = make([]mask.Mask, n)
	t.Oct = make([]mask.Mask, n)
	for i, r := range order {
		t.Med[i] = med[r]
		t.Quart[i] = quart[r]
		t.Oct[i] = oct[r]
	}

	t.Cols = make([][]float32, d)
	colsBuf := make([]float32, n*d)
	for j := 0; j < d; j++ {
		cj := colsBuf[j*n : (j+1)*n]
		for i := 0; i < n; i++ {
			cj[i] = t.Data.Value(i, j)
		}
		t.Cols[j] = cj
	}

	t.buildNodes()
	return t
}

// buildNodes derives the node ranges from the sorted label arrays.
func (t *Tree) buildNodes() {
	n := len(t.Med)
	for i := 0; i < n; {
		l1start := i
		m := t.Med[i]
		for i < n && t.Med[i] == m {
			l2start := i
			q := t.Quart[i]
			for i < n && t.Med[i] == m && t.Quart[i] == q {
				leafStart := i
				o := t.Oct[i]
				for i < n && t.Med[i] == m && t.Quart[i] == q && t.Oct[i] == o {
					i++
				}
				t.Leaves = append(t.Leaves, Node{Start: int32(leafStart), End: int32(i), Label: o})
			}
			_ = l2start
			t.L2 = append(t.L2, Node{Start: int32(l2start), End: int32(i), Label: q})
			// L2Child filled below once leaf indices are known.
		}
		t.L1 = append(t.L1, Node{Start: int32(l1start), End: int32(i), Label: m})
	}
	// Child ranges: walk the node lists matching by position ranges.
	t.L1Child = make([][2]int32, len(t.L1))
	t.L2Child = make([][2]int32, len(t.L2))
	li, l2i := 0, 0
	for k := range t.L1 {
		start2 := l2i
		for l2i < len(t.L2) && t.L2[l2i].End <= t.L1[k].End {
			startLeaf := li
			for li < len(t.Leaves) && t.Leaves[li].End <= t.L2[l2i].End {
				li++
			}
			t.L2Child[l2i] = [2]int32{int32(startLeaf), int32(li)}
			l2i++
		}
		t.L1Child[k] = [2]int32{int32(start2), int32(l2i)}
	}
}

// Route computes the path labels of an arbitrary point — one not
// necessarily part of the tree — relative to the retained global pivots,
// with exactly the label logic Build applies to its input rows. Routed
// labels are therefore directly comparable to stored ones via
// CompositeStrictLabels, which is what lets the incremental-maintenance
// path (internal/delta) run the MDMC filter for a freshly inserted point
// against a tree built long before the point existed.
func (t *Tree) Route(p []float32) (med, quart, oct mask.Mask) {
	for j := range t.MedPivot {
		v := p[j]
		half := 1
		if v < t.MedPivot[j] {
			med |= 1 << uint(j)
			half = 0
		}
		quarter := half * 2
		if v < t.QuartPivot[half][j] {
			quart |= 1 << uint(j)
		} else {
			quarter++
		}
		if t.Depth == 3 && v < t.OctPivot[quarter][j] {
			oct |= 1 << uint(j)
		}
	}
	return med, quart, oct
}

// StrictBelowMasks returns, for sorted position i, the point's path labels
// at each level (Oct is zero for depth-2 trees).
func (t *Tree) StrictBelowMasks(i int) (med, quart, oct mask.Mask) {
	return t.Med[i], t.Quart[i], t.Oct[i]
}

// CompositeStrict returns the subspace in which *every* point at sorted
// position q is guaranteed, from path labels alone, to strictly dominate
// the point at sorted position p (paper §5.2 / §6.2 filter logic):
//
//   - median level: dims where q is below the median and p is not;
//   - quartile level: dims where the median labels agree (same quartile
//     pivot) and q is below it while p is not;
//   - octile level (depth 3): dims where both coarser labels agree and q is
//     below the octile while p is not.
//
// A zero result conveys nothing.
func (t *Tree) CompositeStrict(q, p int) mask.Mask {
	mq, mp := t.Med[q], t.Med[p]
	delta := mq &^ mp
	sameHalf := ^(mq ^ mp)
	qq, qp := t.Quart[q], t.Quart[p]
	delta |= (qq &^ qp) & sameHalf
	if t.Depth == 3 {
		sameQuarter := sameHalf & ^(qq ^ qp)
		delta |= (t.Oct[q] &^ t.Oct[p]) & sameQuarter
	}
	return delta
}

// CompositeStrictLabels is CompositeStrict expressed on raw labels, for
// callers (the GPU kernels) that stage labels in simulated shared memory.
func CompositeStrictLabels(medQ, quartQ, octQ, medP, quartP, octP mask.Mask, depth int) mask.Mask {
	delta := medQ &^ medP
	sameHalf := ^(medQ ^ medP)
	delta |= (quartQ &^ quartP) & sameHalf
	if depth == 3 {
		sameQuarter := sameHalf & ^(quartQ ^ quartP)
		delta |= (octQ &^ octP) & sameQuarter
	}
	return delta
}

// CompositeWorse returns the subspace in which every point at sorted
// position q is guaranteed to be strictly *worse* than p — the mirror image
// of CompositeStrict, used to prune nodes/leaves that cannot contain a
// dominator of p.
func (t *Tree) CompositeWorse(q, p int) mask.Mask {
	return t.CompositeStrict(p, q)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
