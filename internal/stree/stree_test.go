package stree

import (
	"math/rand"
	"testing"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/gen"
	"skycube/internal/mask"
)

func buildRandom(t *testing.T, n, d, depth int, seed int64) *Tree {
	t.Helper()
	ds := gen.Synthetic(gen.Independent, n, d, seed)
	return Build(ds, depth)
}

// Route must reproduce, for every point the tree was built over, exactly
// the labels Build stored at that point's sorted position — routing is a
// pure function of the coordinates and the retained pivots.
func TestRouteMatchesStoredLabels(t *testing.T) {
	for _, depth := range []int{2, 3} {
		tr := buildRandom(t, 800, 5, depth, 7)
		for pos := 0; pos < tr.Data.N; pos++ {
			med, quart, oct := tr.Route(tr.Data.Point(pos))
			if med != tr.Med[pos] || quart != tr.Quart[pos] || oct != tr.Oct[pos] {
				t.Fatalf("depth %d pos %d: Route = (%b,%b,%b), stored (%b,%b,%b)",
					depth, pos, med, quart, oct, tr.Med[pos], tr.Quart[pos], tr.Oct[pos])
			}
		}
	}
}

// Routed labels of an unseen point must yield sound CompositeStrictLabels
// claims: whenever the labels guarantee a stored point strictly dominates
// the routed one on a subspace, the coordinates must agree.
func TestRouteCompositeSound(t *testing.T) {
	tr := buildRandom(t, 400, 4, 3, 9)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		p := make([]float32, 4)
		for j := range p {
			p[j] = rng.Float32()
		}
		med, quart, oct := tr.Route(p)
		for pos := 0; pos < tr.Data.N; pos++ {
			claim := CompositeStrictLabels(tr.Med[pos], tr.Quart[pos], tr.Oct[pos],
				med, quart, oct, tr.Depth)
			q := tr.Data.Point(pos)
			for j := 0; j < 4; j++ {
				if claim&(1<<uint(j)) != 0 && q[j] >= p[j] {
					t.Fatalf("trial %d pos %d dim %d: label claim %b but q=%v p=%v",
						trial, pos, j, claim, q[j], p[j])
				}
			}
		}
	}
}

func TestBuildPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for depth 1")
		}
	}()
	Build(data.New(2, []float32{1, 2}), 1)
}

func TestLeavesPartitionInput(t *testing.T) {
	for _, depth := range []int{2, 3} {
		tr := buildRandom(t, 500, 6, depth, 1)
		pos := int32(0)
		for _, lf := range tr.Leaves {
			if lf.Start != pos {
				t.Fatalf("depth %d: leaf starts at %d, want %d", depth, lf.Start, pos)
			}
			if lf.End <= lf.Start {
				t.Fatalf("depth %d: empty leaf", depth)
			}
			pos = lf.End
		}
		if int(pos) != tr.Data.N {
			t.Fatalf("depth %d: leaves cover %d of %d points", depth, pos, tr.Data.N)
		}
	}
}

func TestNodeHierarchy(t *testing.T) {
	tr := buildRandom(t, 800, 5, 3, 2)
	// L1 children ranges tile L2, and L2 children tile Leaves.
	var l2seen int32
	for k, n1 := range tr.L1 {
		c := tr.L1Child[k]
		if c[0] != l2seen {
			t.Fatalf("L1[%d] children start at %d, want %d", k, c[0], l2seen)
		}
		for i := c[0]; i < c[1]; i++ {
			n2 := tr.L2[i]
			if n2.Start < n1.Start || n2.End > n1.End {
				t.Fatalf("L2[%d] range [%d,%d) outside L1 [%d,%d)", i, n2.Start, n2.End, n1.Start, n1.End)
			}
		}
		l2seen = c[1]
	}
	if int(l2seen) != len(tr.L2) {
		t.Fatalf("L1 children cover %d of %d L2 nodes", l2seen, len(tr.L2))
	}
	var leafSeen int32
	for i, n2 := range tr.L2 {
		c := tr.L2Child[i]
		if c[0] != leafSeen {
			t.Fatalf("L2[%d] leaf children start at %d, want %d", i, c[0], leafSeen)
		}
		for k := c[0]; k < c[1]; k++ {
			lf := tr.Leaves[k]
			if lf.Start < n2.Start || lf.End > n2.End {
				t.Fatalf("leaf %d outside its L2 node", k)
			}
		}
		leafSeen = c[1]
	}
	if int(leafSeen) != len(tr.Leaves) {
		t.Fatalf("L2 children cover %d of %d leaves", leafSeen, len(tr.Leaves))
	}
}

func TestLabelsMatchPivots(t *testing.T) {
	tr := buildRandom(t, 1000, 7, 3, 3)
	d := tr.Data.Dims
	for i := 0; i < tr.Data.N; i++ {
		p := tr.Data.Point(i)
		for j := 0; j < d; j++ {
			below := p[j] < tr.MedPivot[j]
			if below != (tr.Med[i]&mask.Bit(j) != 0) {
				t.Fatalf("point %d dim %d: median label wrong", i, j)
			}
			half := 1
			if below {
				half = 0
			}
			qBelow := p[j] < tr.QuartPivot[half][j]
			if qBelow != (tr.Quart[i]&mask.Bit(j) != 0) {
				t.Fatalf("point %d dim %d: quartile label wrong", i, j)
			}
			quarter := half * 2
			if !qBelow {
				quarter++
			}
			oBelow := p[j] < tr.OctPivot[quarter][j]
			if oBelow != (tr.Oct[i]&mask.Bit(j) != 0) {
				t.Fatalf("point %d dim %d: octile label wrong", i, j)
			}
		}
	}
}

func TestLeafGroupsShareLabels(t *testing.T) {
	tr := buildRandom(t, 600, 4, 3, 4)
	for _, lf := range tr.Leaves {
		m, q, o := tr.Med[lf.Start], tr.Quart[lf.Start], tr.Oct[lf.Start]
		if lf.Label != o {
			t.Fatalf("leaf label %b != first point oct %b", lf.Label, o)
		}
		for i := lf.Start; i < lf.End; i++ {
			if tr.Med[i] != m || tr.Quart[i] != q || tr.Oct[i] != o {
				t.Fatal("leaf contains mixed labels")
			}
		}
	}
}

// The core soundness property: whenever CompositeStrict(q, p) claims a
// subspace, an exact dominance test must confirm strict dominance there.
func TestCompositeStrictSound(t *testing.T) {
	for _, depth := range []int{2, 3} {
		tr := buildRandom(t, 400, 6, depth, 5)
		rng := rand.New(rand.NewSource(9))
		for it := 0; it < 20000; it++ {
			q, p := rng.Intn(tr.Data.N), rng.Intn(tr.Data.N)
			delta := tr.CompositeStrict(q, p)
			if delta == 0 {
				continue
			}
			if !dom.StrictlyDominatesIn(tr.Data.Point(q), tr.Data.Point(p), delta) {
				t.Fatalf("depth %d: composite mask %b wrong for q=%d p=%d", depth, delta, q, p)
			}
		}
	}
}

func TestCompositeStrictSelfIsZero(t *testing.T) {
	tr := buildRandom(t, 300, 5, 3, 6)
	for i := 0; i < tr.Data.N; i++ {
		if got := tr.CompositeStrict(i, i); got != 0 {
			t.Fatalf("CompositeStrict(%d,%d) = %b, want 0", i, i, got)
		}
	}
}

func TestDepth3PrunesAtLeastAsMuchAsDepth2(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 500, 6, 7)
	t2 := Build(ds, 2)
	t3 := Build(ds, 3)
	// Compare by original row so the two sorts align.
	pos2 := make([]int, ds.N)
	pos3 := make([]int, ds.N)
	for i, r := range t2.SrcRow {
		pos2[r] = i
	}
	for i, r := range t3.SrcRow {
		pos3[r] = i
	}
	weaker := 0
	for a := 0; a < 200; a++ {
		for b := 0; b < 200; b++ {
			m2 := t2.CompositeStrict(pos2[a], pos2[b])
			m3 := t3.CompositeStrict(pos3[a], pos3[b])
			if m3&m2 != m2 {
				weaker++
			}
		}
	}
	if weaker != 0 {
		t.Errorf("depth-3 mask lost information vs depth-2 for %d pairs", weaker)
	}
}

func TestCompositeStrictLabelsMatchesMethod(t *testing.T) {
	tr := buildRandom(t, 300, 6, 3, 8)
	rng := rand.New(rand.NewSource(10))
	for it := 0; it < 5000; it++ {
		q, p := rng.Intn(tr.Data.N), rng.Intn(tr.Data.N)
		want := tr.CompositeStrict(q, p)
		got := CompositeStrictLabels(tr.Med[q], tr.Quart[q], tr.Oct[q], tr.Med[p], tr.Quart[p], tr.Oct[p], 3)
		if got != want {
			t.Fatalf("label form %b != method form %b", got, want)
		}
	}
}

func TestCompositeWorseMirrors(t *testing.T) {
	tr := buildRandom(t, 200, 5, 3, 11)
	rng := rand.New(rand.NewSource(12))
	for it := 0; it < 2000; it++ {
		q, p := rng.Intn(tr.Data.N), rng.Intn(tr.Data.N)
		if tr.CompositeWorse(q, p) != tr.CompositeStrict(p, q) {
			t.Fatal("CompositeWorse is not the mirror of CompositeStrict")
		}
	}
}

func TestDuplicatePointsShareLeaf(t *testing.T) {
	// Duplicates must land in the same leaf and produce zero composite
	// masks against each other.
	rows := [][]float32{{0.5, 0.5}, {0.5, 0.5}, {0.1, 0.9}, {0.9, 0.1}}
	tr := Build(data.FromRows(rows), 3)
	var posA, posB int
	for i, r := range tr.SrcRow {
		if r == 0 {
			posA = i
		}
		if r == 1 {
			posB = i
		}
	}
	if tr.CompositeStrict(posA, posB) != 0 || tr.CompositeStrict(posB, posA) != 0 {
		t.Error("duplicate points produced non-zero composite mask")
	}
}

func TestSrcRowIsPermutation(t *testing.T) {
	tr := buildRandom(t, 777, 5, 3, 13)
	seen := make([]bool, tr.Data.N)
	for _, r := range tr.SrcRow {
		if seen[r] {
			t.Fatalf("row %d appears twice", r)
		}
		seen[r] = true
	}
}
