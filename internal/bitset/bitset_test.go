package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Errorf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if s.Count() != 7 {
		t.Errorf("Count = %d, want 7", s.Count())
	}
}

func TestFillAllReset(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 4095} {
		s := New(n)
		s.Fill()
		if !s.All() {
			t.Errorf("n=%d: All() false after Fill", n)
		}
		if s.Count() != n {
			t.Errorf("n=%d: Count = %d after Fill", n, s.Count())
		}
		s.Reset()
		if s.Count() != 0 {
			t.Errorf("n=%d: Count = %d after Reset", n, s.Count())
		}
	}
}

func TestOrAndNot(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	a.Or(b)
	for _, i := range []int{3, 70, 99} {
		if !a.Test(i) {
			t.Errorf("bit %d missing after Or", i)
		}
	}
	a.AndNot(b)
	if !a.Test(3) || a.Test(70) || a.Test(99) {
		t.Error("AndNot result wrong")
	}
}

func TestNextClear(t *testing.T) {
	s := New(200)
	if got := s.NextClear(0); got != 0 {
		t.Errorf("NextClear(0) on empty = %d, want 0", got)
	}
	s.Fill()
	if got := s.NextClear(0); got != -1 {
		t.Errorf("NextClear(0) on full = %d, want -1", got)
	}
	s.Clear(5)
	s.Clear(64)
	s.Clear(199)
	if got := s.NextClear(0); got != 5 {
		t.Errorf("NextClear(0) = %d, want 5", got)
	}
	if got := s.NextClear(6); got != 64 {
		t.Errorf("NextClear(6) = %d, want 64", got)
	}
	if got := s.NextClear(65); got != 199 {
		t.Errorf("NextClear(65) = %d, want 199", got)
	}
	if got := s.NextClear(200); got != -1 {
		t.Errorf("NextClear(200) = %d, want -1", got)
	}
	s.Set(199)
	if got := s.NextClear(65); got != -1 {
		t.Errorf("NextClear(65) = %d, want -1", got)
	}
}

func TestNextClearIteratesAllClearBits(t *testing.T) {
	f := func(setBits []uint16) bool {
		const n = 300
		s := New(n)
		want := make(map[int]bool)
		for i := 0; i < n; i++ {
			want[i] = true
		}
		for _, b := range setBits {
			i := int(b) % n
			s.Set(i)
			delete(want, i)
		}
		got := 0
		for i := s.NextClear(0); i != -1; i = s.NextClear(i + 1) {
			if !want[i] {
				return false
			}
			got++
		}
		return got == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWord32(t *testing.T) {
	s := New(128)
	s.Set(0)
	s.Set(31)
	s.Set(32)
	s.Set(95)
	if got := s.Word32(0); got != 1|1<<31 {
		t.Errorf("Word32(0) = %x", got)
	}
	if got := s.Word32(1); got != 1 {
		t.Errorf("Word32(1) = %x, want 1", got)
	}
	if got := s.Word32(2); got != 1<<31 {
		t.Errorf("Word32(2) = %x", got)
	}
	if got := s.Word32(3); got != 0 {
		t.Errorf("Word32(3) = %x, want 0", got)
	}
	if got := s.Word32(4); got != 0 {
		t.Errorf("Word32(4) out of range = %x, want 0", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(70)
	a.Set(69)
	b := a.Clone()
	b.Set(1)
	if a.Test(1) {
		t.Error("Clone shares storage with original")
	}
	if !b.Test(69) {
		t.Error("Clone missing original bit")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(70), New(70)
	b.Set(10)
	a.Set(20)
	a.CopyFrom(b)
	if !a.Test(10) || a.Test(20) {
		t.Error("CopyFrom did not overwrite")
	}
}
