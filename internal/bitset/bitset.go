// Package bitset provides the fixed-size bitsets that back the per-point
// solution masks B_{p∉S} and B_{p∉S⁺} of the MDMC template (paper §4.3) and
// the HashCube words (paper App. B.1).
//
// A Set over 2^d − 1 subspaces indexes bit δ−1 for subspace δ (the empty
// subspace δ = 0 is never used, matching the paper's right-shift by one).
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-size bitset. The zero value of a Set with no words is
// empty; use New to allocate capacity.
type Set struct {
	words []uint64
	n     int // number of addressable bits
}

// New returns a Set able to hold n bits, all initially unset.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of addressable bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear unsets bit i.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset unsets every bit, retaining capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every addressable bit.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = 1<<uint(rem) - 1
	}
}

// All reports whether every addressable bit is set.
func (s *Set) All() bool {
	return s.Count() == s.n
}

// Or sets s to s ∪ t. Both sets must have the same length.
func (s *Set) Or(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// AndNot sets s to s \ t. Both sets must have the same length.
func (s *Set) AndNot(t *Set) {
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// CopyFrom overwrites s with the contents of t (same length required).
func (s *Set) CopyFrom(t *Set) {
	copy(s.words, t.words)
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// NextClear returns the index of the first unset bit ≥ from, or -1 if every
// bit in [from, Len) is set. Used by the MDMC refine phase to iterate the
// subspaces that the filter could not prune.
func (s *Set) NextClear(from int) int {
	if from >= s.n {
		return -1
	}
	wi := from / wordBits
	// Mask off bits below `from` in the first word by treating them as set.
	w := ^s.words[wi] &^ (1<<uint(from%wordBits) - 1)
	for {
		if w != 0 {
			i := wi*wordBits + bits.TrailingZeros64(w)
			if i >= s.n {
				return -1
			}
			return i
		}
		wi++
		if wi >= len(s.words) {
			return -1
		}
		w = ^s.words[wi]
	}
}

// Word32 returns the w'th 32-bit word of the set, used by the HashCube to
// hash fixed-width slices of B_{p∉S}. Bits beyond Len read as zero.
func (s *Set) Word32(w int) uint32 {
	bitOff := w * 32
	if bitOff >= s.n || bitOff < 0 {
		return 0
	}
	word := s.words[bitOff/wordBits]
	if bitOff%wordBits == 0 {
		return uint32(word)
	}
	return uint32(word >> 32)
}

// Words64 exposes the backing words (read-only by convention).
func (s *Set) Words64() []uint64 { return s.words }
