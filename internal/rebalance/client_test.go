package rebalance

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestFreshnessCarriesIDSegments pins the /shard/info fields a joiner needs
// to adopt its peer's id scheme: a stride-2 partition segment plus a sealed
// split block must round-trip through Freshness, and a payload without
// segments (a plain node) must leave the slice nil.
func TestFreshnessCarriesIDSegments(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/shard/info" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"live":2000,"epoch":7,"wal_seq":3,"records":15,` +
			`"id_segments":[{"start":0,"base":0,"stride":2},` +
			`{"start":2001,"base":268435456,"stride":1}]}`))
	}))
	defer srv.Close()

	f, err := (&Client{}).Freshness(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if f.Epoch != 7 || f.Live != 2000 || f.Records != 15 {
		t.Fatalf("frontier fields = %+v", f)
	}
	want := []IDSegment{{Start: 0, Base: 0, Stride: 2}, {Start: 2001, Base: 268435456, Stride: 1}}
	if len(f.IDSegments) != len(want) {
		t.Fatalf("segments = %+v, want %+v", f.IDSegments, want)
	}
	for i, s := range f.IDSegments {
		if s != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestFreshnessWithoutSegments(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"live":10,"epoch":1}`))
	}))
	defer srv.Close()

	f, err := (&Client{}).Freshness(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if f.IDSegments != nil {
		t.Fatalf("plain node reported segments: %+v", f.IDSegments)
	}
}
