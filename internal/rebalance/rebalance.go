// Package rebalance is the elastic-membership control plane: it moves a
// shard's durable state between nodes so the cluster can grow, split and
// heal without stopping traffic.
//
// The mechanism is a snapshot-streamed bootstrap. A source shard serves its
// newest checkpoint verbatim (GET /shard/snapshot) and the CRC-framed
// records of the WAL segments after it (GET /shard/tail?from=&skip=); a
// joining node materializes a local data directory from the snapshot
// (wal.WriteBootstrap), boots it through the ordinary crash-recovery path,
// and then replays the peer's tail through its own journaled updater — so
// the catch-up itself is durable locally, and a crash mid-join recovers to
// a consistent prefix. The (from, skip) cursor makes the tail feed exactly
// once and resumable; a peer checkpoint that truncates the chain surfaces
// as wal.ErrTailTruncated and the join restarts from a fresh snapshot.
//
// The same primitives serve anti-entropy: a restarted replica compares its
// recovered epoch against its peers' /shard/info freshness (Behind) and, if
// it missed writes while down, wipes its stale directory and re-bootstraps
// from the freshest peer before it ever reports ready.
package rebalance

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"skycube/internal/delta"
	"skycube/internal/obs"
	"skycube/internal/wal"
)

// Options configure one Join/Bootstrap.
type Options struct {
	// Dir is the joining node's data directory; it must hold no WAL state
	// (use wal.WipeForRejoin to discard a stale one first).
	Dir string
	// Peer is the source shard's base URL ("http://host:port").
	Peer string
	// Client fetches the streams; nil uses a default client.
	Client *Client
	// Delta configures the rebuilt updater (threads, compaction, history) —
	// the same options the node would pass to a fresh build.
	Delta delta.Options
	// WAL configures the local store (fsync policy, checkpoint cadence);
	// Dir is overridden with Options.Dir.
	WAL wal.Options
	// Metrics, if non-nil, receives skycube_rebalance_* observations.
	Metrics *obs.RebalanceMetrics
	// Logger, if non-nil, logs join progress.
	Logger *log.Logger
}

// Cursor is the resumable position in a peer's tail chain: records of
// segments >= From, skipping the first Skip already applied.
type Cursor struct {
	From uint64
	Skip int
}

// Node is a joined (or joining) replica: a recovered updater and store plus
// the catch-up cursor against its source peer. The caller wraps Updater and
// Store into a serving node (skycube.AdoptUpdater) once caught up — and
// only starts background compaction then, so replayed records stay the only
// driver of epoch advances during catch-up.
type Node struct {
	Updater  *delta.Updater
	Store    *wal.Store
	Replayed int
	Cursor   Cursor

	opt Options
}

// Join bootstraps a node from the peer's snapshot stream: fetch and verify
// the snapshot, materialize the data directory, and boot it through the
// ordinary recovery path (Open, NewUpdaterFrom, Replay, AttachJournal,
// AttachUpdater). The returned node is a consistent copy of the peer at the
// snapshot's pinned epoch; CatchUp replays what the peer accepted since.
func Join(ctx context.Context, opt Options) (*Node, error) {
	if opt.Dir == "" || opt.Peer == "" {
		return nil, fmt.Errorf("rebalance: join needs a data directory and a peer")
	}
	start := time.Now()
	raw, seq, err := opt.Client.Snapshot(ctx, opt.Peer)
	if err != nil {
		return nil, err
	}
	if err := wal.WriteBootstrap(opt.Dir, raw, nil); err != nil {
		return nil, err
	}
	wopt := opt.WAL
	wopt.Dir = opt.Dir
	if wopt.Logger == nil {
		wopt.Logger = opt.Logger
	}
	store, rec, err := wal.Open(wopt)
	if err != nil {
		return nil, err
	}
	if rec == nil {
		store.Close()
		return nil, fmt.Errorf("rebalance: bootstrap directory %s recovered no state", opt.Dir)
	}
	fail := func(err error) (*Node, error) {
		store.Close()
		return nil, err
	}
	du, err := delta.NewUpdaterFrom(rec.State, opt.Delta)
	if err != nil {
		return fail(fmt.Errorf("rebalance: rebuild from %s snapshot: %w", opt.Peer, err))
	}
	replayed, err := store.Replay(du)
	if err != nil {
		du.Close()
		return fail(fmt.Errorf("rebalance: replay: %w", err))
	}
	du.AttachJournal(store)
	store.AttachUpdater(du)
	opt.Metrics.Bootstrap(time.Since(start), len(raw), replayed)
	if opt.Logger != nil {
		opt.Logger.Printf("rebalance: joined from %s at epoch %d (%d snapshot bytes, segment %d) in %v",
			opt.Peer, du.Current().Epoch(), len(raw), seq, time.Since(start))
	}
	return &Node{
		Updater:  du,
		Store:    store,
		Replayed: replayed,
		Cursor:   Cursor{From: seq, Skip: 0},
		opt:      opt,
	}, nil
}

// CatchUpOnce pulls one tail round from the peer and applies it through the
// node's journaled updater (batch-reply records mirror into the local
// store, so idempotent-retry dedup survives on the copy too). It returns
// how many records were applied and whether the round found the peer's
// frontier already reached (an empty round).
func (n *Node) CatchUpOnce(ctx context.Context) (applied int, caughtUp bool, err error) {
	recs, total, err := n.opt.Client.Tail(ctx, n.opt.Peer, n.Cursor.From, n.Cursor.Skip)
	if err != nil {
		return 0, false, err
	}
	applied, err = wal.Apply(n.Updater, recs, func(id string, status int, body []byte) error {
		return n.Store.LogBatch(id, status, body)
	})
	n.Cursor.Skip += applied
	caughtUp = len(recs) == 0
	n.opt.Metrics.CatchUp(applied, caughtUp)
	if err != nil {
		return applied, false, fmt.Errorf("rebalance: catch-up from %s: %w", n.opt.Peer, err)
	}
	if n.Cursor.Skip != total {
		return applied, false, fmt.Errorf("rebalance: catch-up cursor %d does not match chain total %d",
			n.Cursor.Skip, total)
	}
	return applied, caughtUp, nil
}

// CatchUp pulls tail rounds until one comes back empty — the peer's durable
// frontier at that moment. Under continuous peer writes the frontier moves;
// callers wanting a hard convergence point quiesce the peer first (the
// coordinator's split cutover gates writes around its final CatchUp).
func (n *Node) CatchUp(ctx context.Context) (int, error) {
	totalApplied := 0
	for {
		if err := ctx.Err(); err != nil {
			return totalApplied, err
		}
		applied, caughtUp, err := n.CatchUpOnce(ctx)
		totalApplied += applied
		if err != nil {
			return totalApplied, err
		}
		if caughtUp {
			return totalApplied, nil
		}
	}
}

// Close releases the node without serving: background loops stop and the
// store syncs and closes. The data directory remains bootable.
func (n *Node) Close() {
	n.Updater.Close()
	n.Store.Close()
}

// bootstrapAttempts bounds how often Bootstrap restarts after the peer's
// checkpoint truncates the tail chain mid-join.
const bootstrapAttempts = 3

// Bootstrap is Join plus CatchUp, restarting from a fresh snapshot when the
// peer's checkpointing truncates the tail chain mid-join (rare: it requires
// a full checkpoint interval of writes to land during the join).
func Bootstrap(ctx context.Context, opt Options) (*Node, error) {
	var lastErr error
	for attempt := 0; attempt < bootstrapAttempts; attempt++ {
		if attempt > 0 {
			if err := wal.WipeForRejoin(opt.Dir); err != nil {
				return nil, err
			}
		}
		n, err := Join(ctx, opt)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, err
			}
			continue
		}
		if _, err := n.CatchUp(ctx); err != nil {
			n.Close()
			lastErr = err
			if errors.Is(err, wal.ErrTailTruncated) {
				continue
			}
			return nil, err
		}
		return n, nil
	}
	return nil, fmt.Errorf("rebalance: bootstrap from %s failed after %d attempts: %w",
		opt.Peer, bootstrapAttempts, lastErr)
}
