package rebalance

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"skycube/internal/wal"
)

// Wire headers of the state-transfer protocol (shared with the shard's
// /shard/snapshot and /shard/tail handlers).
const (
	// TailSeqHeader names the WAL segment a snapshot pairs with, and on a
	// tail response the active segment the chain reached.
	TailSeqHeader = "X-Skycube-Tail-Seq"
	// TailTotalHeader is the chain's total record count after this response
	// — the caller's next skip cursor.
	TailTotalHeader = "X-Skycube-Tail-Total"
)

// maxTransferBytes caps one snapshot or tail response read.
const maxTransferBytes = 1 << 30

// DefaultTimeout bounds one transfer request when Client.Timeout is zero.
// Snapshots of large shards take longer than a query round trip, so this is
// deliberately far above the coordinator's per-attempt timeout.
const DefaultTimeout = 60 * time.Second

// Client fetches state-transfer streams from peer shards.
type Client struct {
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Timeout bounds each request; 0 means DefaultTimeout.
	Timeout time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c == nil || c.HTTP == nil {
		return http.DefaultClient
	}
	return c.HTTP
}

func (c *Client) timeout() time.Duration {
	if c == nil || c.Timeout <= 0 {
		return DefaultTimeout
	}
	return c.Timeout
}

// get issues one GET under the client timeout and returns the body and
// response for header inspection. Non-2xx statuses are errors carrying a
// body snippet; 410 Gone maps to wal.ErrTailTruncated.
func (c *Client) get(ctx context.Context, url string) ([]byte, http.Header, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBytes))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode == http.StatusGone {
		return nil, nil, wal.ErrTailTruncated
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		snippet := string(body)
		if len(snippet) > 200 {
			snippet = snippet[:200]
		}
		return nil, nil, fmt.Errorf("rebalance: GET %s: status %d: %s", url, resp.StatusCode, snippet)
	}
	return body, resp.Header, nil
}

// Snapshot fetches the peer's snapshot stream: verbatim checkpoint bytes
// plus the WAL segment seq the tail chain starts at.
func (c *Client) Snapshot(ctx context.Context, peer string) ([]byte, uint64, error) {
	body, hdr, err := c.get(ctx, peer+"/shard/snapshot")
	if err != nil {
		return nil, 0, err
	}
	seq, err := strconv.ParseUint(hdr.Get(TailSeqHeader), 10, 64)
	if err != nil || seq == 0 {
		return nil, 0, fmt.Errorf("rebalance: %s/shard/snapshot: bad %s header %q",
			peer, TailSeqHeader, hdr.Get(TailSeqHeader))
	}
	// Verify before materializing anything: a corrupt stream must fail here,
	// not during local recovery.
	if _, err := wal.DecodeSnapshot(body); err != nil {
		return nil, 0, fmt.Errorf("rebalance: %s snapshot: %w", peer, err)
	}
	return body, seq, nil
}

// Tail fetches the peer's WAL tail from the (from, skip) cursor, returning
// the new records and the chain's total — the next skip. A 410 from the
// peer (the chain was truncated by a checkpoint) surfaces as
// wal.ErrTailTruncated; the caller must restart from a fresh snapshot.
func (c *Client) Tail(ctx context.Context, peer string, from uint64, skip int) ([]wal.Record, int, error) {
	url := fmt.Sprintf("%s/shard/tail?from=%d&skip=%d", peer, from, skip)
	body, hdr, err := c.get(ctx, url)
	if err != nil {
		return nil, 0, err
	}
	total, err := strconv.Atoi(hdr.Get(TailTotalHeader))
	if err != nil || total < skip {
		return nil, 0, fmt.Errorf("rebalance: %s: bad %s header %q", url, TailTotalHeader, hdr.Get(TailTotalHeader))
	}
	recs, err := wal.DecodeRecords(body)
	if err != nil {
		return nil, 0, err
	}
	if len(recs) != total-skip {
		return nil, 0, fmt.Errorf("rebalance: %s: %d records in body, header promises %d",
			url, len(recs), total-skip)
	}
	return recs, total, nil
}

// IDSegment mirrors the cluster package's piecewise id-scheme segment as
// /shard/info reports it. The shape is duplicated here because cluster
// imports rebalance, so rebalance cannot import cluster; a joiner is a
// byte-copy of its peer and must interpret local row numbers with the
// peer's arithmetic, not a default of its own.
type IDSegment struct {
	Start  int32 `json:"start"`
	Base   int32 `json:"base"`
	Stride int32 `json:"stride"`
}

// Freshness is a node's durable frontier, read from /shard/info (or
// /healthz on a plain node). Epoch is the authoritative comparison key:
// write-all replicas apply identical batches, so equal epochs mean
// identical state and a lower epoch means missed writes.
type Freshness struct {
	Epoch       uint64      `json:"epoch"`
	Live        int         `json:"live"`
	WALSeq      uint64      `json:"wal_seq,omitempty"`
	SnapshotSeq uint64      `json:"snapshot_seq,omitempty"`
	Replayed    int         `json:"replayed,omitempty"`
	Records     uint64      `json:"records,omitempty"`
	IDSegments  []IDSegment `json:"id_segments,omitempty"`
}

// Freshness fetches a peer's durable frontier from GET /shard/info.
func (c *Client) Freshness(ctx context.Context, peer string) (Freshness, error) {
	body, _, err := c.get(ctx, peer+"/shard/info")
	if err != nil {
		return Freshness{}, err
	}
	var f Freshness
	if err := json.Unmarshal(body, &f); err != nil {
		return Freshness{}, fmt.Errorf("rebalance: %s/shard/info: %w", peer, err)
	}
	return f, nil
}

// Behind reports whether local is behind any of the peer frontiers, and
// which peer is freshest. A restarted replica that recovered an older epoch
// than a live peer missed writes while down and must re-bootstrap before
// reporting ready.
func Behind(local Freshness, peers []Freshness) (behind bool, freshest int) {
	freshest = -1
	var best uint64
	for i, p := range peers {
		if p.Epoch > best {
			best, freshest = p.Epoch, i
		}
	}
	return freshest >= 0 && best > local.Epoch, freshest
}
