package skycube

import (
	"fmt"
	"log"
	"time"

	"skycube/internal/delta"
	"skycube/internal/hetero"
	"skycube/internal/obs"
	"skycube/internal/wal"
)

// DurableOptions configure on-disk persistence of a maintained skycube
// (Options.Durable). Setting Dir turns it on: every accepted mutation is
// journaled to a write-ahead log before it is acknowledged, epoch-snapshot
// checkpoints bound the log, and NewUpdater recovers the exact pre-crash
// state from disk before returning.
type DurableOptions struct {
	// Dir is the node's data directory (created if absent). Empty disables
	// persistence entirely.
	Dir string
	// Fsync is the WAL durability policy: "always" (default — acknowledged
	// writes survive power loss, group-committed), "interval" (fsync on a
	// timer; a crash loses at most one interval), or "never" (the OS
	// decides; a clean shutdown still loses nothing).
	Fsync string
	// SyncInterval is the "interval" policy's period; 0 means 100ms.
	SyncInterval time.Duration
	// CheckpointEvery triggers a background checkpoint after this many WAL
	// records; 0 means 4096, negative disables auto-checkpointing.
	CheckpointEvery int
	// Logger, if non-nil, logs recovery progress, checkpoints and
	// torn-tail warnings.
	Logger *log.Logger
}

// DeltaOptions configure incremental skycube maintenance (Options.Delta).
// The zero value is a sensible default: compaction at a 25% overlay
// fraction, no background compactor, an 8-epoch history ring.
type DeltaOptions struct {
	// CompactFraction triggers compaction when the snapshot's overlay entry
	// count exceeds this fraction of the base cube's point count. 0 means
	// 0.25; negative disables the automatic trigger entirely.
	CompactFraction float64
	// AutoCompact runs triggered compactions in a background goroutine.
	// Without it, compaction happens only through Updater.Compact.
	AutoCompact bool
	// History is how many recent epochs stay addressable through
	// Updater.At for pinned reads; 0 means 8.
	History int
	// MinCompactOverlay is the overlay floor below which auto-compaction
	// never fires; 0 means 64, negative means no floor.
	MinCompactOverlay int
}

// Snapshot is one immutable MVCC epoch of a maintained skycube. It extends
// Skycube with liveness and epoch queries. Snapshots are safe for
// unlimited concurrent use, never change after publication, and never
// block the updater: pinning an epoch is just holding the value.
type Snapshot interface {
	Skycube
	// Epoch returns the snapshot's epoch; the initial build is epoch 1 and
	// every applied batch or compaction increments it.
	Epoch() uint64
	// Live returns the number of live points at this epoch.
	Live() int
	// Len returns the logical id bound: ids in [0, Len) existed at some
	// epoch up to this one, though some may since have been deleted.
	Len() int
	// Alive reports whether id is a live point at this epoch.
	Alive(id int32) bool
	// Point returns the coordinates of point id (read-only).
	Point(id int32) []float32
}

// UpdaterStats is a point-in-time view of an updater's counters.
type UpdaterStats = delta.Stats

// Updater maintains a skycube under batched point inserts and deletes,
// publishing an immutable Snapshot per applied batch. Inserts are solved
// as single-point MDMC tasks against the retained static tree; deletes
// tombstone the victim and recompute exactly the cuboids it was a skyline
// member of, scheduled across the configured devices. All methods are safe
// for concurrent use.
type Updater struct {
	u *delta.Updater
	// store is the durability subsystem; nil for in-memory updaters.
	store *wal.Store
	// replayed is how many WAL records recovery replayed (0 on a fresh or
	// in-memory start).
	replayed int
}

// NewUpdater builds the initial skycube over ds (epoch 1) and returns an
// updater maintaining it. Point ids are assigned by dataset row — ds row i
// is id i — and inserted points continue the sequence. Maintenance uses
// the MDMC template and the HashCube representation, so opt.Algorithm must
// be MDMC (the default) and opt.MaxLevel must be 0 (full skycube).
// opt.GPUs/CPUAlso select the device pool for cuboid recomputes and
// compactions; opt.Delta tunes snapshots and compaction; opt.Metrics
// receives skycube_delta_* series.
func NewUpdater(ds *Dataset, opt Options) (*Updater, error) {
	if ds == nil {
		return nil, fmt.Errorf("skycube: nil dataset")
	}
	if opt.MaxLevel != 0 && opt.MaxLevel < ds.ds.Dims {
		return nil, fmt.Errorf("skycube: incremental maintenance requires a full skycube (MaxLevel 0, not %d)", opt.MaxLevel)
	}
	dopt, err := maintenanceOptions(opt)
	if err != nil {
		return nil, err
	}
	if opt.Durable.Dir == "" {
		return &Updater{u: delta.NewUpdater(ds.ds, dopt)}, nil
	}
	return newDurableUpdater(ds, opt, dopt)
}

// OpenUpdater recovers an updater purely from opt.Durable.Dir — no
// dataset: the newest valid checkpoint restores the state and the WAL tail
// replays through the ordinary mutation path. It refuses a directory with
// nothing to recover; a first build needs the data and goes through
// NewUpdater. Durable restarts use this — the initial checkpoint made the
// directory self-contained, so the original data file is never consulted
// again (and a node bootstrapped from a peer's snapshot stream never had
// one).
func OpenUpdater(opt Options) (*Updater, error) {
	if opt.Durable.Dir == "" {
		return nil, fmt.Errorf("skycube: OpenUpdater requires Options.Durable.Dir")
	}
	if opt.MaxLevel != 0 {
		return nil, fmt.Errorf("skycube: incremental maintenance requires a full skycube (MaxLevel 0, not %d)", opt.MaxLevel)
	}
	dopt, err := maintenanceOptions(opt)
	if err != nil {
		return nil, err
	}
	return newDurableUpdater(nil, opt, dopt)
}

// maintenanceOptions validates the algorithm choice and translates Options
// into the delta engine's configuration (shared by NewUpdater and
// OpenUpdater).
func maintenanceOptions(opt Options) (delta.Options, error) {
	if opt.Algorithm != MDMC {
		return delta.Options{}, fmt.Errorf("skycube: incremental maintenance requires the MDMC algorithm, not %v", opt.Algorithm)
	}
	threads := opt.threads()
	var devices []hetero.Device
	if len(opt.GPUs) > 0 {
		devices, _ = buildDevices(opt, threads)
	}
	return delta.Options{
		Threads:           threads,
		Devices:           devices,
		CompactFraction:   opt.Delta.CompactFraction,
		AutoCompact:       opt.Delta.AutoCompact,
		History:           opt.Delta.History,
		MinCompactOverlay: opt.Delta.MinCompactOverlay,
		Metrics:           obs.NewDeltaMetrics(opt.Metrics),
	}, nil
}

// newDurableUpdater opens the data directory and either bootstraps it (a
// fresh initial build plus the first checkpoint) or recovers: rebuild at
// the newest valid checkpoint's epoch, replay the WAL tail through the
// ordinary mutation path, and verify the recovered epoch and live count —
// all before any caller can see the updater, so a recovering node serves
// nothing stale.
func newDurableUpdater(ds *Dataset, opt Options, dopt delta.Options) (*Updater, error) {
	store, rec, err := wal.Open(wal.Options{
		Dir:             opt.Durable.Dir,
		Fsync:           opt.Durable.Fsync,
		SyncInterval:    opt.Durable.SyncInterval,
		CheckpointEvery: opt.Durable.CheckpointEvery,
		Metrics:         obs.NewWALMetrics(opt.Metrics),
		Logger:          opt.Durable.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("skycube: %w", err)
	}
	fail := func(err error) (*Updater, error) {
		store.Close()
		return nil, err
	}
	// Both paths construct through NewUpdaterFrom, which — unlike
	// delta.NewUpdater — never starts the background compactor itself:
	// during replay, the WAL must drive every epoch advance.
	var du *delta.Updater
	replayed := 0
	if rec == nil {
		if ds == nil {
			return fail(fmt.Errorf("skycube: %s: nothing to recover (a first build needs the dataset — use NewUpdater)", opt.Durable.Dir))
		}
		d := ds.ds.Dims
		du, err = delta.NewUpdaterFrom(delta.RestoreState{
			Dims:  d,
			Epoch: 1,
			Live:  ds.ds.N,
			Vals:  ds.ds.Vals[:ds.ds.N*d],
		}, dopt)
		if err != nil {
			return fail(fmt.Errorf("skycube: initial build: %w", err))
		}
		// The initial checkpoint makes the directory self-contained: from
		// here on, recovery never needs the original dataset file.
		if err := store.Checkpoint(du); err != nil {
			du.Close()
			return fail(fmt.Errorf("skycube: initial checkpoint: %w", err))
		}
	} else {
		du, err = delta.NewUpdaterFrom(rec.State, dopt)
		if err != nil {
			return fail(fmt.Errorf("skycube: recovery: %w", err))
		}
		if replayed, err = store.Replay(du); err != nil {
			du.Close()
			return fail(fmt.Errorf("skycube: recovery: %w", err))
		}
	}
	// Only now: journal new mutations, accept auto-checkpoints, and start
	// the background compactor (replay is done; its epochs are accounted).
	du.AttachJournal(store)
	store.AttachUpdater(du)
	if dopt.AutoCompact {
		du.StartAutoCompact()
	}
	return &Updater{u: du, store: store, replayed: replayed}, nil
}

// AdoptUpdater wraps an already-recovered delta updater and its store as a
// serving Updater. State-transfer tooling (internal/rebalance) builds nodes
// this way: it materializes a data directory from a peer's snapshot stream,
// runs the ordinary wal.Open/Replay recovery itself, and hands the result
// here so the serving layers see exactly what NewUpdater would have built.
// store may be nil for an in-memory adoption.
func AdoptUpdater(du *delta.Updater, store *wal.Store, replayed int) *Updater {
	return &Updater{u: du, store: store, replayed: replayed}
}

// Delta exposes the underlying incremental updater. State-transfer tooling
// needs it to checkpoint (wal.Store.Checkpoint) and to replay peer records
// (wal.Apply) through the exact engine the node serves from.
func (up *Updater) Delta() *delta.Updater { return up.u }

// Insert buffers one point for the next batch and returns its assigned id.
// The point becomes visible at the snapshot the next Flush publishes.
func (up *Updater) Insert(point []float32) (int32, error) { return up.u.Insert(point) }

// Delete buffers the deletion of a live point; deleting an id inserted in
// the same unflushed batch cancels that insert. Unknown and
// already-deleted ids error immediately.
func (up *Updater) Delete(id int32) error { return up.u.Delete(id) }

// Pending reports the buffered batch size awaiting the next Flush.
func (up *Updater) Pending() (inserts, deletes int) { return up.u.Pending() }

// Flush applies the buffered batch and returns the snapshot serving it
// (the current snapshot if the batch was empty).
func (up *Updater) Flush() Snapshot { return up.u.Flush() }

// Compact forces a full rebuild over the live points, folding the overlay
// into a fresh base, and returns the new snapshot.
func (up *Updater) Compact() Snapshot { return up.u.Compact() }

// Current returns the latest published snapshot.
func (up *Updater) Current() Snapshot { return up.u.Current() }

// At returns the snapshot at the given epoch while it remains in the
// history ring (see DeltaOptions.History).
func (up *Updater) At(epoch uint64) (Snapshot, bool) {
	s := up.u.At(epoch)
	if s == nil {
		return nil, false
	}
	return s, true
}

// Stats returns current maintenance counters.
func (up *Updater) Stats() UpdaterStats { return up.u.Stats() }

// Store exposes the durability subsystem backing this updater — nil for
// in-memory updaters. The serving layer uses it to commit the WAL at
// acknowledgement points and to persist idempotent-batch replies.
func (up *Updater) Store() *wal.Store { return up.store }

// Replayed reports how many WAL records crash recovery replayed when this
// updater was opened (0 on a fresh or in-memory start).
func (up *Updater) Replayed() int { return up.replayed }

// Close stops the background compactor, if any, then syncs and closes the
// write-ahead log — a clean shutdown loses zero acknowledged writes under
// every fsync policy. Published snapshots stay valid after Close.
func (up *Updater) Close() {
	up.u.Close()
	if up.store != nil {
		up.store.Close()
	}
}
