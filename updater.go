package skycube

import (
	"fmt"

	"skycube/internal/delta"
	"skycube/internal/hetero"
	"skycube/internal/obs"
)

// DeltaOptions configure incremental skycube maintenance (Options.Delta).
// The zero value is a sensible default: compaction at a 25% overlay
// fraction, no background compactor, an 8-epoch history ring.
type DeltaOptions struct {
	// CompactFraction triggers compaction when the snapshot's overlay entry
	// count exceeds this fraction of the base cube's point count. 0 means
	// 0.25; negative disables the automatic trigger entirely.
	CompactFraction float64
	// AutoCompact runs triggered compactions in a background goroutine.
	// Without it, compaction happens only through Updater.Compact.
	AutoCompact bool
	// History is how many recent epochs stay addressable through
	// Updater.At for pinned reads; 0 means 8.
	History int
	// MinCompactOverlay is the overlay floor below which auto-compaction
	// never fires; 0 means 64, negative means no floor.
	MinCompactOverlay int
}

// Snapshot is one immutable MVCC epoch of a maintained skycube. It extends
// Skycube with liveness and epoch queries. Snapshots are safe for
// unlimited concurrent use, never change after publication, and never
// block the updater: pinning an epoch is just holding the value.
type Snapshot interface {
	Skycube
	// Epoch returns the snapshot's epoch; the initial build is epoch 1 and
	// every applied batch or compaction increments it.
	Epoch() uint64
	// Live returns the number of live points at this epoch.
	Live() int
	// Len returns the logical id bound: ids in [0, Len) existed at some
	// epoch up to this one, though some may since have been deleted.
	Len() int
	// Alive reports whether id is a live point at this epoch.
	Alive(id int32) bool
	// Point returns the coordinates of point id (read-only).
	Point(id int32) []float32
}

// UpdaterStats is a point-in-time view of an updater's counters.
type UpdaterStats = delta.Stats

// Updater maintains a skycube under batched point inserts and deletes,
// publishing an immutable Snapshot per applied batch. Inserts are solved
// as single-point MDMC tasks against the retained static tree; deletes
// tombstone the victim and recompute exactly the cuboids it was a skyline
// member of, scheduled across the configured devices. All methods are safe
// for concurrent use.
type Updater struct {
	u *delta.Updater
}

// NewUpdater builds the initial skycube over ds (epoch 1) and returns an
// updater maintaining it. Point ids are assigned by dataset row — ds row i
// is id i — and inserted points continue the sequence. Maintenance uses
// the MDMC template and the HashCube representation, so opt.Algorithm must
// be MDMC (the default) and opt.MaxLevel must be 0 (full skycube).
// opt.GPUs/CPUAlso select the device pool for cuboid recomputes and
// compactions; opt.Delta tunes snapshots and compaction; opt.Metrics
// receives skycube_delta_* series.
func NewUpdater(ds *Dataset, opt Options) (*Updater, error) {
	if ds == nil {
		return nil, fmt.Errorf("skycube: nil dataset")
	}
	if opt.Algorithm != MDMC {
		return nil, fmt.Errorf("skycube: incremental maintenance requires the MDMC algorithm, not %v", opt.Algorithm)
	}
	if opt.MaxLevel != 0 && opt.MaxLevel < ds.ds.Dims {
		return nil, fmt.Errorf("skycube: incremental maintenance requires a full skycube (MaxLevel 0, not %d)", opt.MaxLevel)
	}
	threads := opt.threads()
	var devices []hetero.Device
	if len(opt.GPUs) > 0 {
		devices, _ = buildDevices(opt, threads)
	}
	u := delta.NewUpdater(ds.ds, delta.Options{
		Threads:           threads,
		Devices:           devices,
		CompactFraction:   opt.Delta.CompactFraction,
		AutoCompact:       opt.Delta.AutoCompact,
		History:           opt.Delta.History,
		MinCompactOverlay: opt.Delta.MinCompactOverlay,
		Metrics:           obs.NewDeltaMetrics(opt.Metrics),
	})
	return &Updater{u: u}, nil
}

// Insert buffers one point for the next batch and returns its assigned id.
// The point becomes visible at the snapshot the next Flush publishes.
func (up *Updater) Insert(point []float32) (int32, error) { return up.u.Insert(point) }

// Delete buffers the deletion of a live point; deleting an id inserted in
// the same unflushed batch cancels that insert. Unknown and
// already-deleted ids error immediately.
func (up *Updater) Delete(id int32) error { return up.u.Delete(id) }

// Pending reports the buffered batch size awaiting the next Flush.
func (up *Updater) Pending() (inserts, deletes int) { return up.u.Pending() }

// Flush applies the buffered batch and returns the snapshot serving it
// (the current snapshot if the batch was empty).
func (up *Updater) Flush() Snapshot { return up.u.Flush() }

// Compact forces a full rebuild over the live points, folding the overlay
// into a fresh base, and returns the new snapshot.
func (up *Updater) Compact() Snapshot { return up.u.Compact() }

// Current returns the latest published snapshot.
func (up *Updater) Current() Snapshot { return up.u.Current() }

// At returns the snapshot at the given epoch while it remains in the
// history ring (see DeltaOptions.History).
func (up *Updater) At(epoch uint64) (Snapshot, bool) {
	s := up.u.At(epoch)
	if s == nil {
		return nil, false
	}
	return s, true
}

// Stats returns current maintenance counters.
func (up *Updater) Stats() UpdaterStats { return up.u.Stats() }

// Close stops the background compactor, if any. Published snapshots stay
// valid after Close.
func (up *Updater) Close() { up.u.Close() }
