// Cross-algorithm differential test harness: every algorithm path — the
// QSkycube oracle, PQSkycube, STSC, SDSC and MDMC, including the
// cross-device builds with the work-stealing scheduler on and off — must
// materialise exactly the same skycube, cuboid by cuboid, on every
// distribution and dimensionality in the grid.
package skycube_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"skycube"
)

// diffCase is one algorithm path of the differential grid.
type diffCase struct {
	name string
	opt  skycube.Options
}

// diffPaths returns every build path under test. Cross-device paths run
// twice: with the adaptive work-stealing schedule (the default) and with a
// static prepartitioned schedule, so a scheduler bug cannot hide behind the
// schedule it happens to produce.
func diffPaths(threads int) []diffCase {
	hetero := []skycube.GPUModel{skycube.GTX980, skycube.GTXTitan}
	static := skycube.Scheduling{Prepartition: true, DisableStealing: true, DisableRetune: true}
	return []diffCase{
		{"PQSkycube", skycube.Options{Algorithm: skycube.PQSkycube, Threads: threads}},
		{"STSC", skycube.Options{Algorithm: skycube.STSC, Threads: threads}},
		{"SDSC", skycube.Options{Algorithm: skycube.SDSC, Threads: threads}},
		{"MDMC", skycube.Options{Algorithm: skycube.MDMC, Threads: threads}},
		{"SDSC-hetero-steal", skycube.Options{Algorithm: skycube.SDSC, Threads: threads,
			GPUs: hetero, CPUAlso: true}},
		{"SDSC-hetero-static", skycube.Options{Algorithm: skycube.SDSC, Threads: threads,
			GPUs: hetero, CPUAlso: true, Scheduling: static}},
		{"MDMC-hetero-steal", skycube.Options{Algorithm: skycube.MDMC, Threads: threads,
			GPUs: hetero, CPUAlso: true}},
		{"MDMC-hetero-static", skycube.Options{Algorithm: skycube.MDMC, Threads: threads,
			GPUs: hetero, CPUAlso: true, Scheduling: static}},
	}
}

func TestDifferentialAllAlgorithms(t *testing.T) {
	dists := []struct {
		name string
		dist skycube.Distribution
	}{
		{"correlated", skycube.Correlated},
		{"independent", skycube.Independent},
		{"anticorrelated", skycube.Anticorrelated},
	}
	for _, dc := range dists {
		for d := 2; d <= 6; d++ {
			n := 2000
			if dc.dist == skycube.Anticorrelated && d >= 5 {
				// The anticorrelated extended skylines explode with d; keep
				// the oracle affordable.
				n = 800
			}
			name := fmt.Sprintf("%s/d=%d/n=%d", dc.name, d, n)
			t.Run(name, func(t *testing.T) {
				ds := skycube.GenerateSynthetic(dc.dist, n, d, int64(31*d)+7)
				oracle, _, err := skycube.Build(ds, skycube.Options{
					Algorithm: skycube.QSkycube, Threads: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range diffPaths(4) {
					cube, stats, err := skycube.Build(ds, c.opt)
					if err != nil {
						t.Fatalf("%s: %v", c.name, err)
					}
					for _, delta := range skycube.AllSubspaces(d) {
						want := oracle.Skyline(delta)
						got := cube.Skyline(delta)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s: cuboid δ=%0*b has %d skyline points, oracle has %d\n got %v\nwant %v",
								c.name, d, delta, len(got), len(want), got, want)
						}
					}
					// Cross-device paths must also keep the Shares accounting
					// consistent: fractions covering all the work.
					if len(stats.Shares) > 0 {
						sum := 0.0
						for _, sh := range stats.Shares {
							sum += sh.Fraction
						}
						if sum < 0.9999 || sum > 1.0001 {
							t.Errorf("%s: device share fractions sum to %v", c.name, sum)
						}
					}
					if c.opt.Scheduling.DisableStealing && stats.Sched.Steals != 0 {
						t.Errorf("%s: %d steals recorded with stealing disabled", c.name, stats.Sched.Steals)
					}
				}
			})
		}
	}
}

// TestDifferentialKernelAblation re-runs the oracle matrix across the
// dominance-kernel configurations: the oracle is built with the block
// kernels fully disabled (pure scalar), and every algorithm path must
// produce byte-identical cuboids with the default config (blocks + stop
// points), with stop points ablated, and forced scalar. The kernel switches
// are process globals, so the paths run sequentially under each setting and
// the default is restored on exit.
func TestDifferentialKernelAblation(t *testing.T) {
	defer skycube.SetKernelOptions(skycube.KernelOptions{})
	configs := []struct {
		name string
		opt  skycube.KernelOptions
	}{
		{"blocks", skycube.KernelOptions{}},
		{"no-stop-points", skycube.KernelOptions{DisableStopPoints: true}},
		{"scalar", skycube.KernelOptions{DisableBlocks: true}},
	}
	dists := []struct {
		name string
		dist skycube.Distribution
	}{
		{"correlated", skycube.Correlated},
		{"independent", skycube.Independent},
		{"anticorrelated", skycube.Anticorrelated},
	}
	// A trimmed path set keeps the 3×3×5 grid affordable: SDSC covers the
	// hybrid/BNL/merge filters, MDMC the tree refine, PQSkycube the
	// BSkyTree recursion (whose leaves call the BNL window filter).
	paths := []diffCase{
		{"PQSkycube", skycube.Options{Algorithm: skycube.PQSkycube, Threads: 4}},
		{"SDSC", skycube.Options{Algorithm: skycube.SDSC, Threads: 4}},
		{"MDMC", skycube.Options{Algorithm: skycube.MDMC, Threads: 4}},
	}
	for _, dc := range dists {
		for d := 2; d <= 6; d++ {
			n := 2000
			if dc.dist == skycube.Anticorrelated && d >= 5 {
				n = 800
			}
			t.Run(fmt.Sprintf("%s/d=%d", dc.name, d), func(t *testing.T) {
				ds := skycube.GenerateSynthetic(dc.dist, n, d, int64(53*d)+3)
				skycube.SetKernelOptions(skycube.KernelOptions{DisableBlocks: true})
				oracle, _, err := skycube.Build(ds, skycube.Options{
					Algorithm: skycube.QSkycube, Threads: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, kc := range configs {
					skycube.SetKernelOptions(kc.opt)
					for _, c := range paths {
						cube, _, err := skycube.Build(ds, c.opt)
						if err != nil {
							t.Fatalf("%s/%s: %v", kc.name, c.name, err)
						}
						for _, delta := range skycube.AllSubspaces(d) {
							want := oracle.Skyline(delta)
							got := cube.Skyline(delta)
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("%s/%s: cuboid δ=%0*b has %d skyline points, oracle has %d\n got %v\nwant %v",
									kc.name, c.name, d, delta, len(got), len(want), got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestDifferentialIncrementalKernelAblation runs one maintenance scenario —
// build over a prefix, insert a tail, delete a sample, flush — under blocks
// on and blocks off, and requires both updaters' snapshots to agree with
// each other and with a scalar from-scratch oracle on every cuboid. The
// delta path's filter/refine goes through the same Solution kernels as the
// one-shot build, so this pins the incremental tier to the ablation too.
func TestDifferentialIncrementalKernelAblation(t *testing.T) {
	defer skycube.SetKernelOptions(skycube.KernelOptions{})
	const n, tail, deletes, d = 500, 120, 100, 5
	full := skycube.GenerateSynthetic(skycube.Independent, n+tail, d, 431)
	baseRows := make([][]float32, n)
	for i := range baseRows {
		baseRows[i] = full.Point(i)
	}
	base, err := skycube.DatasetFromRows(baseRows)
	if err != nil {
		t.Fatal(err)
	}

	run := func(opt skycube.KernelOptions) (skycube.Snapshot, []int32) {
		skycube.SetKernelOptions(opt)
		up, err := skycube.NewUpdater(base, skycube.Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer up.Close()
		live := make([]int32, n)
		for i := range live {
			live[i] = int32(i)
		}
		for i := 0; i < tail; i++ {
			id, err := up.Insert(full.Point(n + i))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		}
		rng := rand.New(rand.NewSource(17))
		for k := 0; k < deletes && len(live) > 1; k++ {
			idx := rng.Intn(len(live))
			if err := up.Delete(live[idx]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:idx], live[idx+1:]...)
		}
		return up.Flush(), live
	}

	blocksCube, liveA := run(skycube.KernelOptions{})
	scalarCube, liveB := run(skycube.KernelOptions{DisableBlocks: true})
	if !reflect.DeepEqual(liveA, liveB) {
		t.Fatalf("live id sets diverge: %d vs %d ids", len(liveA), len(liveB))
	}
	for _, delta := range skycube.AllSubspaces(d) {
		got := blocksCube.Skyline(delta)
		want := scalarCube.Skyline(delta)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cuboid δ=%0*b: blocks-on flush has %d points, blocks-off has %d\n got %v\nwant %v",
				d, delta, len(got), len(want), got, want)
		}
	}
	checkAgainstFreshBuild(t, scalarCube, liveB)
}

// TestDifferentialIncremental checks the maintenance path against the
// one-shot oracle: build an updater over a prefix of the dataset, insert
// the remaining tail and delete a random sample in two batches, then
// compare every cuboid and every live membership of the flushed (and then
// compacted) snapshot with a from-scratch QSkycube build over the final
// point set. Inserted ids continue the row sequence, so the live id set
// indexes the generated dataset directly.
func TestDifferentialIncremental(t *testing.T) {
	dists := []struct {
		name string
		dist skycube.Distribution
	}{
		{"correlated", skycube.Correlated},
		{"independent", skycube.Independent},
		{"anticorrelated", skycube.Anticorrelated},
	}
	for _, dc := range dists {
		for d := 2; d <= 6; d++ {
			n, tail, deletes := 500, 120, 150
			if dc.dist == skycube.Anticorrelated && d >= 5 {
				// Anticorrelated extended skylines explode with d; keep the
				// per-insert refinement and the oracle affordable.
				n, tail, deletes = 250, 60, 80
			}
			name := fmt.Sprintf("%s/d=%d/n=%d", dc.name, d, n)
			t.Run(name, func(t *testing.T) {
				seed := int64(97*d) + int64(len(dc.name))
				full := skycube.GenerateSynthetic(dc.dist, n+tail, d, seed)
				baseRows := make([][]float32, n)
				for i := range baseRows {
					baseRows[i] = full.Point(i)
				}
				base, err := skycube.DatasetFromRows(baseRows)
				if err != nil {
					t.Fatal(err)
				}
				up, err := skycube.NewUpdater(base, skycube.Options{Threads: 4})
				if err != nil {
					t.Fatal(err)
				}
				defer up.Close()

				live := make([]int32, n)
				for i := range live {
					live[i] = int32(i)
				}
				rng := rand.New(rand.NewSource(seed + 1))
				for batch := 0; batch < 2; batch++ {
					lo, hi := batch*tail/2, (batch+1)*tail/2
					for i := lo; i < hi; i++ {
						id, err := up.Insert(full.Point(n + i))
						if err != nil {
							t.Fatal(err)
						}
						if id != int32(n+i) {
							t.Fatalf("insert %d assigned id %d", n+i, id)
						}
						live = append(live, id)
					}
					for k := 0; k < deletes/2 && len(live) > 1; k++ {
						idx := rng.Intn(len(live))
						if err := up.Delete(live[idx]); err != nil {
							t.Fatal(err)
						}
						live = append(live[:idx], live[idx+1:]...)
					}
					checkAgainstFreshBuild(t, up.Flush(), live)
				}
				checkAgainstFreshBuild(t, up.Compact(), live)
			})
		}
	}
}

// TestDifferentialPartitionMerge checks the cluster tier's foundational
// identity through the public API alone: for every partition mode, splitting
// a dataset, building each part independently, and re-filtering the union of
// the local cuboids yields exactly the full build's skycube, cuboid by
// cuboid. Positional modes (range, grid, angular) renumber points by
// concatenation order, so their oracle is a rebuild over the concatenated
// rows; round-robin keeps the arithmetic id mapping s + r·k.
func TestDifferentialPartitionMerge(t *testing.T) {
	modes := []struct {
		name string
		mode skycube.PartitionMode
	}{
		{"roundrobin", skycube.RoundRobinPartition},
		{"range", skycube.RangePartition},
		{"grid", skycube.GridPartition},
		{"angular", skycube.AngularPartition},
	}
	dominates := func(p, q []float32, delta skycube.Subspace) bool {
		strict := false
		for j := 0; j < len(p); j++ {
			if delta&(1<<uint(j)) == 0 {
				continue
			}
			if p[j] > q[j] {
				return false
			}
			if p[j] < q[j] {
				strict = true
			}
		}
		return strict
	}
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 1200, 4, 59)
	d := ds.Dims()
	for _, mc := range modes {
		for _, k := range []int{2, 3, 4} {
			t.Run(fmt.Sprintf("%s/k=%d", mc.name, k), func(t *testing.T) {
				parts, err := ds.Partition(k, mc.mode)
				if err != nil {
					t.Fatal(err)
				}
				total := 0
				for _, p := range parts {
					total += p.Len()
				}
				if total != ds.Len() {
					t.Fatalf("partition sizes sum to %d, dataset has %d rows", total, ds.Len())
				}
				// The oracle dataset in the id space the merge produces.
				oracleDS := ds
				if mc.mode.Positional() {
					var rows [][]float32
					for _, p := range parts {
						for r := 0; r < p.Len(); r++ {
							rows = append(rows, p.Point(r))
						}
					}
					if oracleDS, err = skycube.DatasetFromRows(rows); err != nil {
						t.Fatal(err)
					}
				}
				oracle, _, err := skycube.Build(oracleDS, skycube.Options{
					Algorithm: skycube.QSkycube, Threads: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				type local struct {
					cube skycube.Skycube
					base int
				}
				locals := make([]local, len(parts))
				base := 0
				for s, p := range parts {
					cube, _, err := skycube.Build(p, skycube.Options{Threads: 2})
					if err != nil {
						t.Fatal(err)
					}
					locals[s] = local{cube: cube, base: base}
					base += p.Len()
				}
				for _, delta := range skycube.AllSubspaces(d) {
					// Gather local cuboid members under global ids, then
					// re-filter the union: the distributed merge in miniature.
					var cands []int32
					for s, lc := range locals {
						for _, r := range lc.cube.Skyline(delta) {
							if mc.mode.Positional() {
								cands = append(cands, int32(lc.base)+r)
							} else {
								cands = append(cands, int32(s)+r*int32(k))
							}
						}
					}
					var got []int32
					for _, id := range cands {
						p := oracleDS.Point(int(id))
						dead := false
						for _, other := range cands {
							if other != id && dominates(oracleDS.Point(int(other)), p, delta) {
								dead = true
								break
							}
						}
						if !dead {
							got = append(got, id)
						}
					}
					sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
					want := oracle.Skyline(delta)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("δ=%0*b: merged %d ids, oracle %d\n got %v\nwant %v",
							d, delta, len(got), len(want), got, want)
					}
				}
			})
		}
	}
}

// TestDifferentialMembership cross-checks the inverse query: for a sample of
// points, the subspace list reported by the HashCube representation (MDMC)
// must equal the lattice representation's (QSkycube oracle).
func TestDifferentialMembership(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 1500, 5, 11)
	oracle, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.QSkycube, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	cube, _, err := skycube.Build(ds, skycube.Options{
		Algorithm: skycube.MDMC, Threads: 4, CPUAlso: true,
		GPUs: []skycube.GPUModel{skycube.GTX980},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := int32(0); id < 100; id++ {
		if got, want := cube.Membership(id), oracle.Membership(id); !reflect.DeepEqual(got, want) {
			t.Fatalf("membership of point %d: %v, want %v", id, got, want)
		}
	}
}
