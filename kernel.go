package skycube

import "skycube/internal/dom"

// KernelOptions controls the process-wide dominance kernel configuration.
// The block kernels (SoA bitmask sweeps with sorted stop points, see
// internal/dom/block.go) are on by default and bit-for-bit equivalent to the
// scalar paths they replace; the switches exist for ablation studies and as
// an operational escape hatch.
type KernelOptions struct {
	// DisableBlocks forces every dominance path back onto the scalar
	// per-pair kernels.
	DisableBlocks bool
	// DisableStopPoints keeps the block sweeps but removes sort-based
	// stop-point termination (every block is scanned).
	DisableStopPoints bool
}

// SetKernelOptions installs the kernel configuration. It is safe to call
// concurrently with running builds: in-flight filters read the switches once
// per call, so every individual result is computed under one coherent
// setting.
func SetKernelOptions(o KernelOptions) {
	dom.SetKernelConfig(dom.KernelConfig{
		DisableBlocks:     o.DisableBlocks,
		DisableStopPoints: o.DisableStopPoints,
	})
}

// KernelOptionsInEffect returns the currently installed configuration.
func KernelOptionsInEffect() KernelOptions {
	c := dom.Kernels()
	return KernelOptions{
		DisableBlocks:     c.DisableBlocks,
		DisableStopPoints: c.DisableStopPoints,
	}
}

// KernelCounters is a snapshot of the process-wide kernel activity counters:
// 64-lane block sweeps executed, scans terminated early by a stop point, and
// filters that fell back to the scalar path (input below the block
// threshold, or an instrumented caller that needs per-test accounting).
type KernelCounters struct {
	BlockSweeps    uint64
	StopPointExits uint64
	ScalarFallback uint64
}

// KernelStats returns the cumulative kernel counters since process start.
func KernelStats() KernelCounters {
	s := dom.KernelStats()
	return KernelCounters{
		BlockSweeps:    s.BlockSweeps,
		StopPointExits: s.StopPointExits,
		ScalarFallback: s.ScalarFallbacks,
	}
}
