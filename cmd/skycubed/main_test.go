package main

import "testing"

func TestParseSubspace(t *testing.T) {
	cases := []struct {
		spec string
		d    int
		want uint32
		ok   bool
	}{
		{"0", 3, 0b001, true},
		{"0,2", 3, 0b101, true},
		{" 1 , 2 ", 3, 0b110, true},
		{"2,2", 3, 0b100, true}, // duplicates collapse
		{"3", 3, 0, false},      // out of range
		{"-1", 3, 0, false},
		{"a", 3, 0, false},
		{"", 3, 0, false},
		{"0,,1", 3, 0, false},
	}
	for _, c := range cases {
		got, err := parseSubspace(c.spec, c.d)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseSubspace(%q, %d) = %b, %v; want %b", c.spec, c.d, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseSubspace(%q, %d) should fail", c.spec, c.d)
		}
	}
}
