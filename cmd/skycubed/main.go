// Command skycubed builds the skycube of a dataset file and answers
// subspace skyline queries against it.
//
// Usage:
//
//	skycubed -algo MDMC -threads 8 [-gpus 1] [-cpu-also] [-max-level 4] \
//	         [-trace build.json] [-progress] [-query 0,2 -query 1] data.txt
//	skycubed -serve :8080 [-pprof] data.txt
//	skycubed -serve :9001 -shard -id-base 0 -id-stride 2 part-0-of-2.txt
//	skycubed -serve :8080 -coordinator -shards http://a:9001,http://b:9002 -replicas 1
//
// With no -query flags it prints summary statistics; each -query flag names
// a subspace as a comma-separated dimension list and prints its skyline.
// With -serve, the built skycube is exposed over HTTP (GET /info,
// /skyline?dims=0,2, /membership?id=17, plus /buildinfo, /metrics and
// /trace); the server drains in-flight requests and exits cleanly on
// SIGINT/SIGTERM. -updates (with -serve) runs the server in maintenance
// mode: reads serve MVCC snapshots (pin one with ?epoch=N) and POST
// /insert, /delete, /flush, /compact mutate the cube incrementally;
// -compact-fraction tunes when the background compactor folds the
// accumulated overlay into a fresh base. -trace writes the build's span
// timeline as Chrome
// trace_event JSON (open in about://tracing or ui.perfetto.dev); -progress
// reports build progress on stderr; -pprof additionally mounts
// net/http/pprof under /debug/pprof/ on the serving mux.
//
// -shard serves one horizontal partition as a cluster shard node (the
// maintainable-server endpoints plus /shard/cuboid and /shard/info, with
// -id-base/-id-stride mapping local rows to global ids); -coordinator
// serves the cluster's public surface over a shard map given via -shards
// (consecutive URLs grouped into replica sets of -replicas), with hedged
// reads, retries and per-replica circuit breakers. See README "Cluster
// mode".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"skycube"
	"skycube/internal/obs"
	"skycube/internal/server"
)

// traceOptions bundles the serving-mode tracing flags (-trace-sample,
// -slow-query, -debug-requests) for the run* helpers.
type traceOptions struct {
	ring        *obs.RequestRing
	sampleEvery int
	slowQuery   time.Duration
}

// requestRing builds the request ring the tracing flags ask for: nil (no
// tracing surface) when both are zero; otherwise sized by -debug-requests
// (obs.DefaultRingSize when only -trace-sample is set).
func requestRing(sampleEvery, ringSize int) *obs.RequestRing {
	if sampleEvery <= 0 && ringSize <= 0 {
		return nil
	}
	return obs.NewRequestRing(ringSize)
}

type queryList []string

func (q *queryList) String() string { return strings.Join(*q, ";") }
func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

func main() {
	algoName := flag.String("algo", "MDMC", "algorithm: MDMC, STSC, SDSC, PQSkycube, QSkycube")
	threads := flag.Int("threads", runtime.NumCPU(), "CPU worker threads")
	gpus := flag.Int("gpus", 0, "number of modelled GTX 980 devices to use (SDSC/MDMC)")
	cpuAlso := flag.Bool("cpu-also", false, "use the CPU alongside the GPUs (cross-device)")
	maxLevel := flag.Int("max-level", 0, "materialise only subspaces with ≤ this many dimensions (0 = all)")
	var queries queryList
	flag.Var(&queries, "query", "subspace to print, as comma-separated dimension indices (repeatable)")
	serve := flag.String("serve", "", "address to serve the skycube over HTTP (e.g. :8080)")
	updates := flag.Bool("updates", false, "with -serve: accept incremental inserts/deletes (MDMC, full skycube only)")
	compactFraction := flag.Float64("compact-fraction", 0, "with -updates: background-compact when the overlay exceeds this fraction of the base (0 = default 0.25)")
	maxBody := flag.Int64("max-body", 0, "with -updates: mutation request body cap in bytes (0 = default 1 MiB)")
	traceFile := flag.String("trace", "", "write the build trace as Chrome trace_event JSON to this file")
	progress := flag.Bool("progress", false, "report build progress on stderr")
	pprofFlag := flag.Bool("pprof", false, "with -serve: mount net/http/pprof under /debug/pprof/")
	noSteal := flag.Bool("no-steal", false, "disable work stealing between device queues (cross-device runs)")
	noRetune := flag.Bool("no-retune", false, "freeze chunk sizes at the device hints instead of auto-tuning")
	noCostOrder := flag.Bool("no-cost-order", false, "disable SDSC's largest-first cuboid ordering")
	prepartition := flag.Bool("prepartition", false, "statically split the MDMC task range across devices up front")
	minChunk := flag.Int("min-chunk", 0, "minimum auto-tuned grab size (0 = default 16)")
	maxChunk := flag.Int("max-chunk", 0, "maximum auto-tuned grab size (0 = default 4096)")
	chunkTime := flag.Duration("chunk-time", 0, "target wall time of one grab (0 = default 2ms)")
	shardMode := flag.Bool("shard", false, "with -serve: run as a cluster shard node over this partition file")
	idBase := flag.Int("id-base", 0, "with -shard: global id of local row 0")
	idStride := flag.Int("id-stride", 1, "with -shard: global id step between consecutive local rows (shard count for round-robin partitions)")
	idSegments := flag.String("id-segments", "", "with -shard: piecewise id scheme as start:base:stride[,start:base:stride...] — reinstates a split child's sealed insert block on restart (overrides -id-base/-id-stride)")
	joinFrom := flag.String("join-from", "", "with -shard -data-dir: bootstrap this node's state from a peer shard's snapshot stream instead of a data file")
	peerList := flag.String("peers", "", "with -shard -data-dir: comma-separated peer replica URLs for anti-entropy — a restart that recovered behind a peer wipes and re-bootstraps before reporting ready")
	coordinator := flag.Bool("coordinator", false, "with -serve: run as a cluster coordinator (no data file)")
	shardURLs := flag.String("shards", "", "with -coordinator: comma-separated shard replica URLs")
	replicas := flag.Int("replicas", 1, "with -coordinator: replicas per shard (consecutive -shards URLs are grouped)")
	extended := flag.Bool("extended", false, "with -coordinator: fetch extended skylines S⁺ from shards instead of materialised cuboids")
	clusterTimeout := flag.Duration("cluster-timeout", 0, "with -coordinator: per-attempt shard request timeout (0 = default 2s)")
	prune := flag.Bool("prune", false, "with -coordinator: region-pruned gathers — fetch per-shard corners first, skip dominated shards, filter candidates source-side")
	preFilterK := flag.Int("pre-filter-k", 0, "with -coordinator: representative points per shard in the pruning prelude (0 = corners only; >0 implies -prune)")
	preFilterMinShards := flag.Int("pre-filter-min-shards", 0, "with -coordinator: skip the representative pre-filter below this many shards (0 = default 3)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "with -coordinator: delay before hedging a slow read to a second replica (0 = default 50ms, negative disables)")
	cacheEntries := flag.Int("cache-entries", 0, "with -serve: LRU bound of the epoch-keyed response cache (0 = default 4096)")
	noCache := flag.Bool("no-cache", false, "with -serve: disable response caching (the ETag/304 contract remains)")
	dataDir := flag.String("data-dir", "", "with -updates/-shard: persist mutations to a write-ahead log and epoch snapshots in this directory, recovering from it on startup (empty = in-memory)")
	fsyncPolicy := flag.String("fsync", "always", "with -data-dir: WAL fsync policy — always (group-committed per ack), interval (timer), never")
	checkpointEvery := flag.Int("checkpoint-every", 0, "with -data-dir: WAL records between background checkpoints (0 = default 4096, negative disables)")
	traceSample := flag.Int("trace-sample", 0, "with -serve: trace one in N requests into /debug/requests (0 = only requests carrying a traceparent header)")
	slowQuery := flag.Duration("slow-query", 0, "with -serve: log one structured line (with trace id) per request at least this slow (0 = off)")
	debugRequests := flag.Int("debug-requests", 0, "with -serve: request-ring size behind GET /debug/requests (0 = off unless -trace-sample is set, then 256)")
	noBlockKernel := flag.Bool("no-block-kernel", false, "use the scalar per-pair dominance kernels instead of the SoA block sweeps (ablation)")
	noStopPoints := flag.Bool("no-stop-points", false, "keep block sweeps but disable sort-based stop-point termination (ablation)")
	flag.Parse()

	skycube.SetKernelOptions(skycube.KernelOptions{
		DisableBlocks:     *noBlockKernel,
		DisableStopPoints: *noStopPoints,
	})

	tracing := traceOptions{
		ring:        requestRing(*traceSample, *debugRequests),
		sampleEvery: *traceSample,
		slowQuery:   *slowQuery,
	}

	if *coordinator {
		if *serve == "" {
			fmt.Fprintln(os.Stderr, "skycubed: -coordinator requires -serve")
			os.Exit(2)
		}
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "skycubed: -coordinator takes no data file")
			os.Exit(2)
		}
		runCoordinatorMode(*serve, *shardURLs, *replicas, *extended, *clusterTimeout, *hedgeDelay, *pprofFlag, *cacheEntries, *noCache, tracing,
			pruneOptions{enabled: *prune, preFilterK: *preFilterK, preFilterMinShards: *preFilterMinShards})
		return
	}

	if *shardMode && *joinFrom != "" {
		if *serve == "" || *dataDir == "" {
			fmt.Fprintln(os.Stderr, "skycubed: -join-from requires -shard, -serve and -data-dir")
			os.Exit(2)
		}
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "skycubed: -join-from takes no data file (state comes from the peer)")
			os.Exit(2)
		}
		segs, err := parseIDSegments(*idSegments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skycubed:", err)
			os.Exit(2)
		}
		idFlagsSet := false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "id-base", "id-stride", "id-segments":
				idFlagsSet = true
			}
		})
		g := maybeStartGated(*serve, *dataDir)
		runJoiningShard(*serve, *joinFrom,
			durableOptions(*dataDir, *fsyncPolicy, *checkpointEvery),
			*threads, *compactFraction,
			shardServeOptions(*idBase, *idStride, segs, *maxBody, *cacheEntries, *noCache, tracing),
			!idFlagsSet, *pprofFlag, g)
		return
	}

	if *shardMode && *dataDir != "" && flag.NArg() == 0 {
		// Durable restart: no data file. Recovery rebuilds the state from
		// the directory's newest checkpoint and WAL tail; a node that was
		// bootstrapped with -join-from never had a partition file at all.
		if *serve == "" {
			fmt.Fprintln(os.Stderr, "skycubed: -shard requires -serve")
			os.Exit(2)
		}
		segs, err := parseIDSegments(*idSegments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skycubed:", err)
			os.Exit(2)
		}
		opt := skycube.Options{
			Threads: *threads,
			Metrics: skycube.NewMetrics(),
			Delta: skycube.DeltaOptions{
				AutoCompact:     true,
				CompactFraction: *compactFraction,
			},
			Durable: durableOptions(*dataDir, *fsyncPolicy, *checkpointEvery),
		}
		for i := 0; i < *gpus; i++ {
			opt.GPUs = append(opt.GPUs, skycube.GTX980)
		}
		g := maybeStartGated(*serve, *dataDir)
		runRestartingShard(*serve, opt,
			shardServeOptions(*idBase, *idStride, segs, *maxBody, *cacheEntries, *noCache, tracing),
			*peerList, *pprofFlag, g)
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: skycubed [flags] data.txt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	algo, ok := map[string]skycube.Algorithm{
		"MDMC": skycube.MDMC, "STSC": skycube.STSC, "SDSC": skycube.SDSC,
		"PQSkycube": skycube.PQSkycube, "QSkycube": skycube.QSkycube,
	}[*algoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "skycubed: unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}
	ds, err := skycube.ReadDataset(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}

	opt := skycube.Options{
		Algorithm: algo,
		Threads:   *threads,
		MaxLevel:  *maxLevel,
		CPUAlso:   *cpuAlso,
		Scheduling: skycube.Scheduling{
			DisableStealing:  *noSteal,
			DisableRetune:    *noRetune,
			DisableCostOrder: *noCostOrder,
			Prepartition:     *prepartition,
			MinChunk:         *minChunk,
			MaxChunk:         *maxChunk,
			TargetChunkTime:  *chunkTime,
		},
	}
	for i := 0; i < *gpus; i++ {
		opt.GPUs = append(opt.GPUs, skycube.GTX980)
	}
	if *traceFile != "" || *serve != "" {
		opt.Trace = skycube.NewTrace()
	}
	if *serve != "" {
		opt.Metrics = skycube.NewMetrics()
	}
	if *progress {
		opt.Progress = stderrProgress()
	}

	if *shardMode {
		if *serve == "" {
			fmt.Fprintln(os.Stderr, "skycubed: -shard requires -serve")
			os.Exit(2)
		}
		segs, err := parseIDSegments(*idSegments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skycubed:", err)
			os.Exit(2)
		}
		opt.Delta = skycube.DeltaOptions{
			AutoCompact:     true,
			CompactFraction: *compactFraction,
		}
		opt.Durable = durableOptions(*dataDir, *fsyncPolicy, *checkpointEvery)
		// With a data directory, the listener starts before recovery: the
		// gate answers 503 not-ready while the snapshot loads and the WAL
		// tail replays, so probes and the coordinator see "recovering"
		// rather than connection-refused.
		g := maybeStartGated(*serve, *dataDir)
		runShardMode(*serve, ds, opt,
			shardServeOptions(*idBase, *idStride, segs, *maxBody, *cacheEntries, *noCache, tracing),
			*peerList, *pprofFlag, g)
		return
	}

	if *updates {
		if *serve == "" {
			fmt.Fprintln(os.Stderr, "skycubed: -updates requires -serve")
			os.Exit(2)
		}
		opt.Delta = skycube.DeltaOptions{
			AutoCompact:     true,
			CompactFraction: *compactFraction,
		}
		opt.Durable = durableOptions(*dataDir, *fsyncPolicy, *checkpointEvery)
		g := maybeStartGated(*serve, *dataDir)
		up, err := skycube.NewUpdater(ds, opt) // recovery, when durable, happens here
		if err != nil {
			fmt.Fprintln(os.Stderr, "skycubed:", err)
			os.Exit(1)
		}
		defer up.Close()
		snap := up.Current()
		fmt.Printf("built maintainable %s skycube of %d×%d (%d stored ids, epoch %d, %d WAL records replayed)\n",
			algo, ds.Len(), ds.Dims(), snap.IDCount(), snap.Epoch(), up.Replayed())
		runUpdaterServer(*serve, up, opt, *pprofFlag, *maxBody, *cacheEntries, *noCache, tracing, g)
		return
	}

	cube, stats, err := skycube.Build(ds, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}

	fmt.Printf("built %s skycube of %d×%d in %v (%d stored ids",
		algo, ds.Len(), ds.Dims(), stats.Elapsed.Round(stats.Elapsed/1000+1), cube.IDCount())
	if cube.MaxLevel() < ds.Dims() {
		fmt.Printf(", partial to level %d", cube.MaxLevel())
	}
	fmt.Println(")")
	for _, sh := range stats.Shares {
		fmt.Printf("  %-8s %8d tasks (%.1f%%)\n", sh.Name, sh.Tasks, sh.Fraction*100)
	}
	if c := stats.Sched; c.Steals > 0 || c.Refills > 0 {
		fmt.Printf("  scheduler: %d refills, %d steals (%d tasks moved), %d chunk retunes\n",
			c.Refills, c.Steals, c.StolenTasks, c.Retunes)
	}

	if *traceFile != "" {
		if err := writeTrace(*traceFile, opt.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "skycubed:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote build trace (%d spans) to %s\n", opt.Trace.Len(), *traceFile)
	}

	if *serve != "" {
		runServer(*serve, cube, ds, opt, stats, algo, *pprofFlag, *cacheEntries, *noCache, tracing)
		return
	}
	if len(queries) == 0 {
		full := skycube.FullSpace(ds.Dims())
		fmt.Printf("full-space skyline: %d points\n", len(cube.Skyline(full)))
		return
	}
	for _, q := range queries {
		delta, err := parseSubspace(q, ds.Dims())
		if err != nil {
			fmt.Fprintln(os.Stderr, "skycubed:", err)
			os.Exit(2)
		}
		ids := cube.Skyline(delta)
		fmt.Printf("skyline of dims {%s} (δ=%d): %d points: %v\n", q, delta, len(ids), ids)
	}
}

// runServer serves the cube until SIGINT/SIGTERM, then drains in-flight
// requests for up to ten seconds before exiting.
func runServer(addr string, cube skycube.Skycube, ds *skycube.Dataset,
	opt skycube.Options, stats skycube.Stats, algo skycube.Algorithm, withPprof bool,
	cacheEntries int, noCache bool, tracing traceOptions) {
	srv := server.NewWith(cube, ds, server.Options{
		BuildInfo: &server.BuildInfo{
			Algorithm:       algo.String(),
			Points:          ds.Len(),
			Dims:            ds.Dims(),
			MaxLevel:        cube.MaxLevel(),
			ElapsedSeconds:  stats.Elapsed.Seconds(),
			Shares:          stats.Shares,
			GPUModelSeconds: stats.GPUModelSeconds,
		},
		Metrics:      opt.Metrics,
		Trace:        opt.Trace,
		Logger:       log.New(os.Stderr, "skycubed: ", log.LstdFlags),
		CacheEntries: cacheEntries,
		DisableCache: noCache,
		Requests:     tracing.ring,
		SampleEvery:  tracing.sampleEvery,
		SlowQuery:    tracing.slowQuery,
	})
	mountPprof(srv, withPprof)
	serveAndDrain(addr, srv,
		"GET /info, /skyline?dims=0,2, /membership?id=17, /buildinfo, /metrics, /trace")
}

// durableOptions builds the persistence options the -data-dir/-fsync/
// -checkpoint-every flags ask for (zero value when -data-dir is unset).
func durableOptions(dir, fsync string, checkpointEvery int) skycube.DurableOptions {
	if dir == "" {
		return skycube.DurableOptions{}
	}
	return skycube.DurableOptions{
		Dir:             dir,
		Fsync:           fsync,
		CheckpointEvery: checkpointEvery,
		Logger:          log.New(os.Stderr, "skycubed: ", log.LstdFlags),
	}
}

// gatedServer is a listener started before the node's state exists: the
// startup gate answers 503 not-ready until openAndDrain installs the real
// handler after recovery.
type gatedServer struct {
	gate    *server.StartupGate
	httpSrv *http.Server
	errCh   chan error
}

// maybeStartGated starts the gated listener when a data directory is
// configured; nil otherwise (in-memory nodes build state before binding).
func maybeStartGated(addr, dataDir string) *gatedServer {
	if dataDir == "" {
		return nil
	}
	g := &gatedServer{gate: server.NewStartupGate(), errCh: make(chan error, 1)}
	g.httpSrv = &http.Server{Addr: addr, Handler: g.gate}
	go func() { g.errCh <- g.httpSrv.ListenAndServe() }()
	fmt.Printf("listening on %s (503 not-ready until recovery completes)\n", addr)
	return g
}

// openAndDrain installs the recovered handler on the gate and runs the
// ordinary signal/drain loop on the already-listening server.
func (g *gatedServer) openAndDrain(handler http.Handler, endpoints string) {
	g.gate.Open(handler)
	fmt.Printf("serving on %s (%s)\n", g.httpSrv.Addr, endpoints)
	drainOnSignal(g.httpSrv, g.errCh)
}

// runUpdaterServer serves a maintainable skycube: snapshot reads plus the
// mutation endpoints.
func runUpdaterServer(addr string, up *skycube.Updater, opt skycube.Options, withPprof bool,
	maxBody int64, cacheEntries int, noCache bool, tracing traceOptions, g *gatedServer) {
	srv := server.NewWith(nil, nil, server.Options{
		Updater:      up,
		MaxBodyBytes: maxBody,
		Metrics:      opt.Metrics,
		Trace:        opt.Trace,
		Logger:       log.New(os.Stderr, "skycubed: ", log.LstdFlags),
		CacheEntries: cacheEntries,
		DisableCache: noCache,
		Requests:     tracing.ring,
		SampleEvery:  tracing.sampleEvery,
		SlowQuery:    tracing.slowQuery,
	})
	mountPprof(srv, withPprof)
	endpoints := "GET /info, /skyline?dims=0,2[&epoch=N], /membership?id=17, /updates; POST /insert, /delete, /flush, /compact"
	if g != nil {
		g.openAndDrain(srv, endpoints)
		return
	}
	serveAndDrain(addr, srv, endpoints)
}

func mountPprof(srv *server.Server, withPprof bool) {
	if !withPprof {
		return
	}
	srv.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index))
	srv.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	srv.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	srv.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	srv.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
}

func mountPprofMux(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// serveAndDrain runs the HTTP server until SIGINT/SIGTERM, then drains
// in-flight requests for up to ten seconds.
func serveAndDrain(addr string, handler http.Handler, endpoints string) {
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("serving on %s (%s)\n", addr, endpoints)
	drainOnSignal(httpSrv, errCh)
}

// drainOnSignal blocks until SIGINT/SIGTERM (or a listener error), then
// drains in-flight requests for up to ten seconds. It returns — rather
// than exits — on the clean path, so callers' deferred closers run:
// that is what syncs and closes the WAL, making a SIGTERM stop lose zero
// acknowledged writes.
func drainOnSignal(httpSrv *http.Server, errCh chan error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "skycubed: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "skycubed: shutdown:", err)
		os.Exit(1)
	}
}

// stderrProgress returns a ProgressFunc that overwrites one stderr line,
// throttled so concurrent build workers don't flood the terminal.
func stderrProgress() skycube.ProgressFunc {
	var last atomic.Int64
	return func(p skycube.Progress) {
		done, total := p.CuboidsDone, p.TotalCuboids
		unit := "cuboids"
		if p.Algorithm == skycube.MDMC {
			done, total, unit = p.PointsDone, p.TotalPoints, "points"
		}
		now := time.Now().UnixMilli()
		prev := last.Load()
		// One update per 100 ms, plus always the final one.
		if done < total && (now-prev < 100 || !last.CompareAndSwap(prev, now)) {
			return
		}
		fmt.Fprintf(os.Stderr, "\rskycubed: %s %d/%d %s", p.Algorithm, done, total, unit)
		if done >= total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// writeTrace dumps the trace as Chrome trace_event JSON.
func writeTrace(path string, tr *skycube.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseSubspace(spec string, d int) (skycube.Subspace, error) {
	var delta skycube.Subspace
	for _, part := range strings.Split(spec, ",") {
		dim, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || dim < 0 || dim >= d {
			return 0, fmt.Errorf("bad dimension %q in subspace %q (need 0..%d)", part, spec, d-1)
		}
		delta |= skycube.SubspaceOf(dim)
	}
	if delta == 0 {
		return 0, fmt.Errorf("empty subspace %q", spec)
	}
	return delta, nil
}
