// Command skycubed builds the skycube of a dataset file and answers
// subspace skyline queries against it.
//
// Usage:
//
//	skycubed -algo MDMC -threads 8 [-gpus 1] [-cpu-also] [-max-level 4] \
//	         [-query 0,2 -query 1] data.txt
//	skycubed -serve :8080 data.txt
//
// With no -query flags it prints summary statistics; each -query flag names
// a subspace as a comma-separated dimension list and prints its skyline.
// With -serve, the built skycube is exposed over HTTP (GET /info,
// /skyline?dims=0,2, /membership?id=17).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"

	"skycube"
	"skycube/internal/server"
)

type queryList []string

func (q *queryList) String() string { return strings.Join(*q, ";") }
func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

func main() {
	algoName := flag.String("algo", "MDMC", "algorithm: MDMC, STSC, SDSC, PQSkycube, QSkycube")
	threads := flag.Int("threads", runtime.NumCPU(), "CPU worker threads")
	gpus := flag.Int("gpus", 0, "number of modelled GTX 980 devices to use (SDSC/MDMC)")
	cpuAlso := flag.Bool("cpu-also", false, "use the CPU alongside the GPUs (cross-device)")
	maxLevel := flag.Int("max-level", 0, "materialise only subspaces with ≤ this many dimensions (0 = all)")
	var queries queryList
	flag.Var(&queries, "query", "subspace to print, as comma-separated dimension indices (repeatable)")
	serve := flag.String("serve", "", "address to serve the skycube over HTTP (e.g. :8080)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: skycubed [flags] data.txt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	algo, ok := map[string]skycube.Algorithm{
		"MDMC": skycube.MDMC, "STSC": skycube.STSC, "SDSC": skycube.SDSC,
		"PQSkycube": skycube.PQSkycube, "QSkycube": skycube.QSkycube,
	}[*algoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "skycubed: unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}
	ds, err := skycube.ReadDataset(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}

	opt := skycube.Options{
		Algorithm: algo,
		Threads:   *threads,
		MaxLevel:  *maxLevel,
		CPUAlso:   *cpuAlso,
	}
	for i := 0; i < *gpus; i++ {
		opt.GPUs = append(opt.GPUs, skycube.GTX980)
	}
	cube, stats, err := skycube.Build(ds, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}

	fmt.Printf("built %s skycube of %d×%d in %v (%d stored ids",
		algo, ds.Len(), ds.Dims(), stats.Elapsed.Round(stats.Elapsed/1000+1), cube.IDCount())
	if cube.MaxLevel() < ds.Dims() {
		fmt.Printf(", partial to level %d", cube.MaxLevel())
	}
	fmt.Println(")")
	for _, sh := range stats.Shares {
		fmt.Printf("  %-8s %8d tasks (%.1f%%)\n", sh.Name, sh.Tasks, sh.Fraction*100)
	}

	if *serve != "" {
		fmt.Printf("serving on %s (GET /info, /skyline?dims=0,2, /membership?id=17)\n", *serve)
		if err := http.ListenAndServe(*serve, server.New(cube, ds)); err != nil {
			fmt.Fprintln(os.Stderr, "skycubed:", err)
			os.Exit(1)
		}
		return
	}
	if len(queries) == 0 {
		full := skycube.FullSpace(ds.Dims())
		fmt.Printf("full-space skyline: %d points\n", len(cube.Skyline(full)))
		return
	}
	for _, q := range queries {
		delta, err := parseSubspace(q, ds.Dims())
		if err != nil {
			fmt.Fprintln(os.Stderr, "skycubed:", err)
			os.Exit(2)
		}
		ids := cube.Skyline(delta)
		fmt.Printf("skyline of dims {%s} (δ=%d): %d points: %v\n", q, delta, len(ids), ids)
	}
}

func parseSubspace(spec string, d int) (skycube.Subspace, error) {
	var delta skycube.Subspace
	for _, part := range strings.Split(spec, ",") {
		dim, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || dim < 0 || dim >= d {
			return 0, fmt.Errorf("bad dimension %q in subspace %q (need 0..%d)", part, spec, d-1)
		}
		delta |= skycube.SubspaceOf(dim)
	}
	if delta == 0 {
		return 0, fmt.Errorf("empty subspace %q", spec)
	}
	return delta, nil
}
