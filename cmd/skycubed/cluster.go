package main

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"skycube"
	"skycube/internal/cluster"
)

// runShardMode serves one horizontal partition as a cluster shard node:
// the full single-node endpoint set plus /shard/cuboid and /shard/info,
// with local rows mapped to global ids via -id-base/-id-stride.
func runShardMode(addr string, ds *skycube.Dataset, opt skycube.Options,
	idBase, idStride int, withPprof bool, maxBody int64, cacheEntries int, noCache bool,
	tracing traceOptions, g *gatedServer) {
	sh, err := cluster.NewShard(ds, opt, cluster.ShardOptions{
		IDBase:       idBase,
		IDStride:     idStride,
		Metrics:      opt.Metrics,
		Logger:       log.New(os.Stderr, "skycubed: ", log.LstdFlags),
		MaxBodyBytes: maxBody,
		CacheEntries: cacheEntries,
		DisableCache: noCache,
		Requests:     tracing.ring,
		SampleEvery:  tracing.sampleEvery,
		SlowQuery:    tracing.slowQuery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}
	defer sh.Close()
	snap := sh.Updater().Current()
	fmt.Printf("shard node over %d×%d (global ids %d + r·%d, epoch %d, %d WAL records replayed)\n",
		ds.Len(), ds.Dims(), idBase, idStride, snap.Epoch(), sh.Updater().Replayed())
	mountPprof(sh.Server(), withPprof)
	endpoints := "GET /shard/cuboid?subspace=N, /shard/info, /skyline, /healthz, /metrics; POST /insert, /delete, /flush"
	if g != nil {
		g.openAndDrain(sh, endpoints)
		return
	}
	serveAndDrain(addr, sh, endpoints)
}

// pruneOptions carry the -prune/-pre-filter-k/-pre-filter-min-shards flags.
type pruneOptions struct {
	enabled            bool
	preFilterK         int
	preFilterMinShards int
}

// runCoordinatorMode serves the cluster's public surface over a shard map
// given as a flat URL list: with -replicas R, each consecutive run of R
// URLs is one shard's replica set.
func runCoordinatorMode(addr, shardList string, replicas int, extended bool,
	timeout, hedgeDelay time.Duration, withPprof bool, cacheEntries int, noCache bool,
	tracing traceOptions, prune pruneOptions) {
	urls := splitNonEmpty(shardList)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "skycubed: -coordinator requires -shards url,url,...")
		os.Exit(2)
	}
	if replicas <= 0 {
		replicas = 1
	}
	if len(urls)%replicas != 0 {
		fmt.Fprintf(os.Stderr, "skycubed: %d shard URLs do not divide into replica sets of %d\n",
			len(urls), replicas)
		os.Exit(2)
	}
	var specs []cluster.ShardSpec
	for i := 0; i < len(urls); i += replicas {
		specs = append(specs, cluster.ShardSpec{Replicas: urls[i : i+replicas]})
	}
	metrics := skycube.NewMetrics()
	coord, err := cluster.NewCoordinator(specs, cluster.CoordinatorOptions{
		Timeout:            timeout,
		HedgeDelay:         hedgeDelay,
		Extended:           extended,
		Prune:              prune.enabled,
		PreFilterK:         prune.preFilterK,
		PreFilterMinShards: prune.preFilterMinShards,
		Metrics:            metrics,
		Logger:             log.New(os.Stderr, "skycubed: ", log.LstdFlags),
		CacheEntries:       cacheEntries,
		DisableCache:       noCache,
		Requests:           tracing.ring,
		SampleEvery:        tracing.sampleEvery,
		SlowQuery:          tracing.slowQuery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}
	fmt.Printf("coordinator over %d shard(s) × %d replica(s)\n", len(specs), replicas)

	var handler http.Handler = coord
	if withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", coord)
		mountPprofMux(mux)
		handler = mux
	}
	endpoints := "GET /skyline?dims=0,2[&explain=1], /info, /healthz, /metrics; POST /insert, /delete, /flush"
	if tracing.ring != nil {
		endpoints += "; GET /debug/requests, /trace/query?id=..."
	}
	serveAndDrain(addr, handler, endpoints)
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
