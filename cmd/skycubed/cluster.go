package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"skycube"
	"skycube/internal/cluster"
	"skycube/internal/delta"
	"skycube/internal/rebalance"
	"skycube/internal/wal"
)

// shardEndpoints is the banner line every shard-mode variant prints.
const shardEndpoints = "GET /shard/cuboid?subspace=N, /shard/info, /shard/snapshot, /shard/tail, /skyline, /healthz, /metrics; POST /insert, /delete, /flush"

// parseIDSegments parses the -id-segments flag: a comma-separated list of
// start:base:stride triples (e.g. "0:1:2,500:268435456:1").
func parseIDSegments(spec string) ([]cluster.IDSegment, error) {
	if spec == "" {
		return nil, nil
	}
	var segs []cluster.IDSegment
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad id segment %q (need start:base:stride)", part)
		}
		var vals [3]int64
		for i, f := range fields {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad id segment %q: %v", part, err)
			}
			vals[i] = v
		}
		segs = append(segs, cluster.IDSegment{
			Start: int32(vals[0]), Base: int32(vals[1]), Stride: int32(vals[2]),
		})
	}
	return segs, nil
}

// shardServeOptions assembles the ShardOptions shared by every shard-mode
// variant from the relevant flags.
func shardServeOptions(idBase, idStride int, segs []cluster.IDSegment,
	maxBody int64, cacheEntries int, noCache bool, tracing traceOptions) cluster.ShardOptions {
	return cluster.ShardOptions{
		IDBase:       idBase,
		IDStride:     idStride,
		IDSegments:   segs,
		Logger:       log.New(os.Stderr, "skycubed: ", log.LstdFlags),
		MaxBodyBytes: maxBody,
		CacheEntries: cacheEntries,
		DisableCache: noCache,
		Requests:     tracing.ring,
		SampleEvery:  tracing.sampleEvery,
		SlowQuery:    tracing.slowQuery,
	}
}

// runShardMode serves one horizontal partition as a cluster shard node:
// the full single-node endpoint set plus the /shard/* cluster protocol,
// with local rows mapped to global ids via -id-base/-id-stride (or a full
// -id-segments scheme). With -peers and -data-dir set, recovery runs
// anti-entropy first: if a peer's epoch is ahead of what local recovery
// produced — this node missed writes while it was down — the stale
// directory is wiped and the state re-bootstrapped from the freshest peer
// before the node ever reports ready.
func runShardMode(addr string, ds *skycube.Dataset, opt skycube.Options,
	sopt cluster.ShardOptions, peerList string, withPprof bool, g *gatedServer) {
	sopt.Metrics = opt.Metrics
	sh, err := cluster.NewShard(ds, opt, sopt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}
	if peers := splitNonEmpty(peerList); len(peers) > 0 && opt.Durable.Dir != "" {
		sh, err = antiEntropy(sh, peers, opt, sopt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skycubed:", err)
			os.Exit(1)
		}
	}
	defer sh.Close()
	snap := sh.Updater().Current()
	fmt.Printf("shard node over %d×%d (%d live, epoch %d, %d WAL records replayed)\n",
		ds.Len(), ds.Dims(), snap.Live(), snap.Epoch(), sh.Updater().Replayed())
	mountPprof(sh.Server(), withPprof)
	if g != nil {
		g.openAndDrain(sh, shardEndpoints)
		return
	}
	serveAndDrain(addr, sh, shardEndpoints)
}

// runRestartingShard serves a durable shard purely from its data directory
// (-shard -data-dir with no data file): recovery rebuilds the state from
// the newest checkpoint and WAL tail. The partition file stopped being
// consulted at the first checkpoint, and a split child bootstrapped with
// -join-from never had one — requiring the file on restart would force
// operators to invent it. Anti-entropy (-peers) applies exactly as for a
// file-seeded shard.
func runRestartingShard(addr string, opt skycube.Options, sopt cluster.ShardOptions,
	peerList string, withPprof bool, g *gatedServer) {
	sopt.Metrics = opt.Metrics
	sopt.Threads = opt.Threads
	up, err := skycube.OpenUpdater(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}
	sh, err := cluster.NewShardFrom(up, sopt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}
	if peers := splitNonEmpty(peerList); len(peers) > 0 {
		sh, err = antiEntropy(sh, peers, opt, sopt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skycubed:", err)
			os.Exit(1)
		}
	}
	defer sh.Close()
	snap := sh.Updater().Current()
	fmt.Printf("shard node restarted from %s (%d live, epoch %d, %d WAL records replayed)\n",
		opt.Durable.Dir, snap.Live(), snap.Epoch(), sh.Updater().Replayed())
	mountPprof(sh.Server(), withPprof)
	if g != nil {
		g.openAndDrain(sh, shardEndpoints)
		return
	}
	serveAndDrain(addr, sh, shardEndpoints)
}

// rebalanceOptions translates the durability flags into the options a
// rebalance bootstrap needs: the same delta and WAL configuration the node
// would use for a fresh local build, rooted at the data directory.
func rebalanceOptions(peer string, dopt skycube.DurableOptions, threads int, compactFraction float64) rebalance.Options {
	return rebalance.Options{
		Dir:  dopt.Dir,
		Peer: strings.TrimRight(peer, "/"),
		Delta: delta.Options{
			Threads:         threads,
			CompactFraction: compactFraction,
		},
		WAL: wal.Options{
			Fsync:           dopt.Fsync,
			SyncInterval:    dopt.SyncInterval,
			CheckpointEvery: dopt.CheckpointEvery,
			Logger:          dopt.Logger,
		},
		Logger: dopt.Logger,
	}
}

// antiEntropy compares the locally recovered frontier against the peers'.
// If any peer is ahead, the local state is stale — this node was down while
// the replica group accepted writes — so it is discarded and re-bootstrapped
// from the freshest peer. Unreachable peers are skipped: with every peer
// down there is nothing to compare against, and serving the recovered state
// is strictly better than refusing to start.
func antiEntropy(sh *cluster.Shard, peers []string, opt skycube.Options, sopt cluster.ShardOptions) (*cluster.Shard, error) {
	ctx := context.Background()
	snap := sh.Updater().Current()
	local := rebalance.Freshness{Epoch: snap.Epoch(), Live: snap.Live()}
	rc := &rebalance.Client{}
	var fresh []rebalance.Freshness
	var urls []string
	for _, p := range peers {
		f, err := rc.Freshness(ctx, strings.TrimRight(p, "/"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "skycubed: anti-entropy: peer %s unreachable: %v\n", p, err)
			continue
		}
		fresh = append(fresh, f)
		urls = append(urls, p)
	}
	behind, freshest := rebalance.Behind(local, fresh)
	if !behind {
		fmt.Printf("anti-entropy: local epoch %d is current across %d reachable peer(s)\n",
			local.Epoch, len(fresh))
		return sh, nil
	}
	fmt.Printf("anti-entropy: local epoch %d is behind peer %s (epoch %d): re-bootstrapping\n",
		local.Epoch, urls[freshest], fresh[freshest].Epoch)
	sh.Close()
	if err := wal.WipeForRejoin(opt.Durable.Dir); err != nil {
		return nil, err
	}
	node, err := rebalance.Bootstrap(ctx, rebalanceOptions(urls[freshest], opt.Durable, opt.Threads, opt.Delta.CompactFraction))
	if err != nil {
		return nil, err
	}
	node.Updater.StartAutoCompact()
	up := skycube.AdoptUpdater(node.Updater, node.Store, node.Replayed)
	sopt.Metrics = opt.Metrics
	sopt.Threads = opt.Threads
	sopt.Source = node
	return cluster.NewShardFrom(up, sopt)
}

// runJoiningShard bootstraps a brand-new shard replica from a peer's
// snapshot stream (-join-from): no data file, no local history — the data
// directory is materialized from the peer's checkpoint, the WAL tail
// replayed through the local journaled updater, and the node starts serving
// only once caught up. The bootstrap source stays attached, so a subsequent
// split cutover can POST /shard/sync for the final write-quiesced catch-up.
//
// Unless the operator pinned an id scheme (-id-base/-id-stride/
// -id-segments), the joiner adopts the peer's scheme from /shard/info: the
// copied rows carry the peer's global ids, so interpreting them with the
// stride-1 default would mis-assign ownership — a later split prune would
// then drop rows both sides believe the other owns.
func runJoiningShard(addr, peer string, dopt skycube.DurableOptions,
	threads int, compactFraction float64, sopt cluster.ShardOptions,
	inheritIDs bool, withPprof bool, g *gatedServer) {
	peer = strings.TrimRight(peer, "/")
	if inheritIDs {
		f, err := (&rebalance.Client{}).Freshness(context.Background(), peer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skycubed: -join-from peer id scheme:", err)
			os.Exit(1)
		}
		if len(f.IDSegments) > 0 {
			segs := make([]cluster.IDSegment, len(f.IDSegments))
			for i, s := range f.IDSegments {
				segs[i] = cluster.IDSegment{Start: s.Start, Base: s.Base, Stride: s.Stride}
			}
			sopt.IDBase, sopt.IDStride, sopt.IDSegments = 0, 0, segs
			fmt.Printf("inherited id scheme from %s (%d segment(s))\n", peer, len(segs))
		}
	}
	node, err := rebalance.Bootstrap(context.Background(), rebalanceOptions(peer, dopt, threads, compactFraction))
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}
	node.Updater.StartAutoCompact()
	up := skycube.AdoptUpdater(node.Updater, node.Store, node.Replayed)
	sopt.Metrics = skycube.NewMetrics()
	sopt.Threads = threads
	sopt.Source = node
	sh, err := cluster.NewShardFrom(up, sopt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}
	defer sh.Close()
	snap := up.Current()
	fmt.Printf("joined from %s (%d live, epoch %d, %d records replayed)\n",
		peer, snap.Live(), snap.Epoch(), node.Replayed+node.Cursor.Skip)
	mountPprof(sh.Server(), withPprof)
	if g != nil {
		g.openAndDrain(sh, shardEndpoints)
		return
	}
	serveAndDrain(addr, sh, shardEndpoints)
}

// pruneOptions carry the -prune/-pre-filter-k/-pre-filter-min-shards flags.
type pruneOptions struct {
	enabled            bool
	preFilterK         int
	preFilterMinShards int
}

// runCoordinatorMode serves the cluster's public surface over a shard map
// given as a flat URL list: with -replicas R, each consecutive run of R
// URLs is one shard's replica set.
func runCoordinatorMode(addr, shardList string, replicas int, extended bool,
	timeout, hedgeDelay time.Duration, withPprof bool, cacheEntries int, noCache bool,
	tracing traceOptions, prune pruneOptions) {
	urls := splitNonEmpty(shardList)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "skycubed: -coordinator requires -shards url,url,...")
		os.Exit(2)
	}
	if replicas <= 0 {
		replicas = 1
	}
	if len(urls)%replicas != 0 {
		fmt.Fprintf(os.Stderr, "skycubed: %d shard URLs do not divide into replica sets of %d\n",
			len(urls), replicas)
		os.Exit(2)
	}
	var specs []cluster.ShardSpec
	for i := 0; i < len(urls); i += replicas {
		specs = append(specs, cluster.ShardSpec{Replicas: urls[i : i+replicas]})
	}
	metrics := skycube.NewMetrics()
	coord, err := cluster.NewCoordinator(specs, cluster.CoordinatorOptions{
		Timeout:            timeout,
		HedgeDelay:         hedgeDelay,
		Extended:           extended,
		Prune:              prune.enabled,
		PreFilterK:         prune.preFilterK,
		PreFilterMinShards: prune.preFilterMinShards,
		Metrics:            metrics,
		Logger:             log.New(os.Stderr, "skycubed: ", log.LstdFlags),
		CacheEntries:       cacheEntries,
		DisableCache:       noCache,
		Requests:           tracing.ring,
		SampleEvery:        tracing.sampleEvery,
		SlowQuery:          tracing.slowQuery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "skycubed:", err)
		os.Exit(1)
	}
	fmt.Printf("coordinator over %d shard(s) × %d replica(s)\n", len(specs), replicas)

	var handler http.Handler = coord
	if withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", coord)
		mountPprofMux(mux)
		handler = mux
	}
	endpoints := "GET /skyline?dims=0,2[&explain=1], /info, /healthz, /metrics; POST /insert, /delete, /flush"
	if tracing.ring != nil {
		endpoints += "; GET /debug/requests, /trace/query?id=..."
	}
	serveAndDrain(addr, handler, endpoints)
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
