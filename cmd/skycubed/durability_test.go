package main_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"skycube"
)

// These tests build the real binary and crash it — SIGTERM for the clean
// path, SIGKILL for the chaotic one — so they exercise the full stack:
// flag parsing, the startup gate, recovery, and the signal/drain loop.
// Skipped under -short; CI runs them in a dedicated job.

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func skycubedBinary(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("subprocess test: skipped in -short mode")
	}
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "skycubed-bin-*")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "skycubed")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func writeDataset(t *testing.T, ds *skycube.Dataset) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

type node struct {
	cmd *exec.Cmd
	url string
	out bytes.Buffer
}

func startNode(t *testing.T, bin string, args ...string) *node {
	t.Helper()
	n := &node{cmd: exec.Command(bin, args...)}
	n.cmd.Stdout = &n.out
	n.cmd.Stderr = &n.out
	if err := n.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if n.cmd.ProcessState == nil {
			n.cmd.Process.Kill()
			n.cmd.Wait()
		}
	})
	return n
}

func (n *node) waitReady(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(n.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("node never became ready; output:\n%s", n.out.String())
}

func (n *node) waitExit(t *testing.T) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- n.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		n.cmd.Process.Kill()
		t.Fatalf("node did not exit; output:\n%s", n.out.String())
	}
}

func httpGetBody(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// TestSIGTERMRestartByteIdentical: write, stop with SIGTERM (the clean
// path: drain, sync, close the WAL), restart from the same directory —
// /skyline must come back byte-identical, ETag included, under every
// fsync policy (a clean shutdown loses nothing even with -fsync never).
func TestSIGTERMRestartByteIdentical(t *testing.T) {
	bin := skycubedBinary(t)
	for _, policy := range []string{"always", "never"} {
		t.Run(policy, func(t *testing.T) {
			ds := skycube.GenerateSynthetic(skycube.Independent, 100, 3, 71)
			dataFile := writeDataset(t, ds)
			dataDir := filepath.Join(t.TempDir(), "wal")
			addr := freeAddr(t)
			args := []string{"-serve", addr, "-updates", "-data-dir", dataDir, "-fsync", policy, dataFile}

			n := startNode(t, bin, args...)
			n.url = "http://" + addr
			n.waitReady(t)

			post := func(path, body string) {
				t.Helper()
				resp, err := http.Post(n.url+path, "application/json", strings.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, b)
				}
			}
			post("/insert", `{"points":[[0.5,0.1,0.9],[0.2,0.8,0.3],[0.7,0.7,0.1]]}`)
			post("/flush", "")
			post("/insert", `{"points":[[0.05,0.05,0.95]]}`)
			post("/flush", "")
			code, want, hdr := httpGetBody(t, n.url+"/skyline?dims=0,1,2")
			if code != http.StatusOK {
				t.Fatalf("skyline: %d: %s", code, want)
			}
			wantETag := hdr.Get("ETag")

			if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			n.waitExit(t)

			n2 := startNode(t, bin, args...)
			n2.url = "http://" + addr
			n2.waitReady(t)
			code, got, hdr := httpGetBody(t, n2.url+"/skyline?dims=0,1,2")
			if code != http.StatusOK {
				t.Fatalf("skyline after restart: %d: %s", code, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("restarted /skyline diverged:\n got %s\nwant %s\nnode output:\n%s",
					got, want, n2.out.String())
			}
			if et := hdr.Get("ETag"); et != wantETag {
				t.Fatalf("restarted ETag %q, want %q (epoch not restored exactly)", et, wantETag)
			}
			if !strings.Contains(n2.out.String(), "WAL records replayed") {
				t.Fatalf("restart output missing replay report:\n%s", n2.out.String())
			}
			n2.cmd.Process.Signal(syscall.SIGTERM)
			n2.waitExit(t)
		})
	}
}

// TestSIGKILLStormRecovery is the crash-chaos test: a shard node under a
// write storm is SIGKILLed at varied points (mid-append, mid-commit,
// mid-checkpoint — -checkpoint-every 16 keeps checkpoints in flight),
// restarted, and after retrying the in-flight batch the recovered node
// must agree with a never-killed in-process oracle on every answer.
// Acknowledged batches retried after the crash must replay, not re-apply.
func TestSIGKILLStormRecovery(t *testing.T) {
	bin := skycubedBinary(t)
	ds := skycube.GenerateSynthetic(skycube.Independent, 80, 3, 72)
	dataFile := writeDataset(t, ds)
	dataDir := filepath.Join(t.TempDir(), "wal")
	addr := freeAddr(t)
	args := []string{"-serve", addr, "-shard", "-id-base", "0", "-id-stride", "1",
		"-data-dir", dataDir, "-fsync", "always", "-checkpoint-every", "16", dataFile}

	oracle, err := skycube.NewUpdater(ds, skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	pool := skycube.GenerateSynthetic(skycube.Independent, 4096, 3, 73)
	nextPoint := 0
	takePoints := func(k int) [][]float32 {
		pts := make([][]float32, k)
		for i := range pts {
			pts[i] = pool.Point(nextPoint % pool.Len())
			nextPoint++
		}
		return pts
	}

	type batch struct {
		id     string
		points [][]float32
		ack    []byte // nil until acknowledged
	}
	var batches []*batch
	batchSeq := 0

	// applyToOracle mirrors one acknowledged batch into the oracle,
	// asserting the ids the node assigned are exactly the oracle's.
	applyToOracle := func(t *testing.T, b *batch) {
		t.Helper()
		var resp struct {
			IDs []int32 `json:"ids"`
		}
		if err := json.Unmarshal(b.ack, &resp); err != nil {
			t.Fatalf("batch %s ack %q: %v", b.id, b.ack, err)
		}
		if len(resp.IDs) != len(b.points) {
			t.Fatalf("batch %s: %d ids for %d points", b.id, len(resp.IDs), len(b.points))
		}
		for i, p := range b.points {
			id, err := oracle.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			if id != resp.IDs[i] {
				t.Fatalf("batch %s point %d: node id %d, oracle id %d — recovery lost or duplicated an insert",
					b.id, i, resp.IDs[i], id)
			}
		}
	}

	client := &http.Client{Timeout: 5 * time.Second}
	postJSON := func(url, body string) (int, []byte, error) {
		resp, err := client.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}

	compare := func(t *testing.T, n *node, round int) {
		t.Helper()
		if code, b, err := postJSON(n.url+"/flush", ""); err != nil || code != http.StatusOK {
			t.Fatalf("round %d: flush: %d %s (%v)", round, code, b, err)
		}
		oracle.Flush()
		for _, dims := range []string{"0,1,2", "0,1", "2"} {
			code, body, _ := httpGetBody(t, n.url+"/skyline?dims="+dims)
			if code != http.StatusOK {
				t.Fatalf("round %d: skyline dims=%s: %d: %s", round, dims, code, body)
			}
			var resp struct {
				IDs []int32 `json:"ids"`
			}
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			delta, err := parseDims(dims)
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.Current().Skyline(delta)
			if !reflect.DeepEqual(resp.IDs, want) {
				t.Fatalf("round %d: recovered skyline dims=%s diverged from never-killed oracle:\n got %v\nwant %v",
					round, dims, resp.IDs, want)
			}
		}
	}

	var inflight *batch
	for round, killAfter := range []time.Duration{
		120 * time.Millisecond, 250 * time.Millisecond, 400 * time.Millisecond,
	} {
		n := startNode(t, bin, args...)
		n.url = "http://" + addr
		n.waitReady(t)

		// Dedup check: re-send a long-acknowledged batch; the reply must be
		// the original ack byte for byte, across a crash and a restart.
		if len(batches) > 2 {
			old := batches[1]
			code, body, err := postJSON(n.url+"/insert",
				fmt.Sprintf(`{"points":%s,"batch":%q}`, mustJSON(old.points), old.id))
			if err != nil || code != http.StatusOK {
				t.Fatalf("round %d: replaying batch %s: %d %s (%v)", round, old.id, code, body, err)
			}
			if !bytes.Equal(body, old.ack) {
				t.Fatalf("round %d: batch %s replay diverged:\n got %s\nwant %s",
					round, old.id, body, old.ack)
			}
		}

		killed := make(chan struct{})
		go func() {
			time.Sleep(killAfter)
			n.cmd.Process.Kill() // SIGKILL: no drain, no WAL close
			close(killed)
		}()

	storm:
		for {
			b := &batch{id: fmt.Sprintf("storm-%d", batchSeq), points: takePoints(2)}
			batchSeq++
			code, body, err := postJSON(n.url+"/insert",
				fmt.Sprintf(`{"points":%s,"batch":%q}`, mustJSON(b.points), b.id))
			if err != nil {
				inflight = b // unknown state: durable, applied, or lost
				break storm
			}
			if code != http.StatusOK {
				t.Fatalf("round %d: insert %s: %d: %s", round, b.id, code, body)
			}
			b.ack = body
			applyToOracle(t, b)
			batches = append(batches, b)
			if batchSeq%5 == 0 {
				if _, _, err := postJSON(n.url+"/flush", ""); err != nil {
					break storm // flush died with the node; reconciled by compare()
				}
				oracle.Flush()
			}
		}
		<-killed
		n.waitExit(t)

		// Recover and verify: the restarted node must agree with the oracle.
		n2 := startNode(t, bin, args...)
		n2.url = "http://" + addr
		n2.waitReady(t)
		if inflight != nil {
			code, body, err := postJSON(n2.url+"/insert",
				fmt.Sprintf(`{"points":%s,"batch":%q}`, mustJSON(inflight.points), inflight.id))
			if err != nil || code != http.StatusOK {
				t.Fatalf("round %d: retrying in-flight batch %s: %d %s (%v)",
					round, inflight.id, code, body, err)
			}
			inflight.ack = body
			applyToOracle(t, inflight)
			batches = append(batches, inflight)
			inflight = nil
		}
		compare(t, n2, round)
		n2.cmd.Process.Kill()
		n2.waitExit(t)
	}
	if len(batches) < 6 {
		t.Fatalf("storm too small to mean anything: %d acknowledged batches", len(batches))
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func parseDims(spec string) (skycube.Subspace, error) {
	var delta skycube.Subspace
	for _, part := range strings.Split(spec, ",") {
		var dim int
		if _, err := fmt.Sscanf(part, "%d", &dim); err != nil {
			return 0, err
		}
		delta |= skycube.SubspaceOf(dim)
	}
	return delta, nil
}
