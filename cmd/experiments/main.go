// Command experiments regenerates the paper's evaluation: every figure and
// table of §7 and Appendix A has a corresponding subcommand that prints the
// measured rows/series.
//
// Usage:
//
//	experiments [-scale tiny|small|paper] <experiment>...
//	experiments -scale small all
//
// Experiments: fig4, fig5, fig6, fig7, fig8-11 (aliases fig8…fig11), fig12,
// fig13, table2, table3, ablations, sched, all.
//
// The default "small" scale completes on a laptop in tens of minutes; the
// "paper" scale uses the publication's exact workload parameters and may
// run for many hours.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"skycube/internal/bench"
)

func main() {
	scaleName := flag.String("scale", "small", "workload scale: tiny, small, or paper")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	scale, err := bench.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	experiments := map[string]func(){
		"fig4":      func() { bench.Fig4(os.Stdout, scale) },
		"fig5":      func() { bench.Fig5(os.Stdout, scale) },
		"fig6":      func() { bench.Fig6(os.Stdout, scale) },
		"fig7":      func() { bench.Fig7(os.Stdout, scale) },
		"fig8-11":   func() { bench.FigHardware(os.Stdout, scale) },
		"fig12":     func() { bench.Fig12(os.Stdout, scale) },
		"fig13":     func() { bench.Fig13(os.Stdout, scale) },
		"table2":    func() { bench.Table2(os.Stdout, scale) },
		"table3":    func() { bench.Table3(os.Stdout, scale) },
		"ablations": func() { bench.Ablations(os.Stdout, scale) },
		"sched":     func() { bench.Sched(os.Stdout, scale) },
	}
	for _, alias := range []string{"fig8", "fig9", "fig10", "fig11"} {
		experiments[alias] = experiments["fig8-11"]
	}

	var order []string
	if flag.NArg() == 1 && flag.Arg(0) == "all" {
		order = []string{"fig4", "fig5", "fig6", "fig7", "fig8-11", "fig12", "fig13",
			"table2", "table3", "ablations", "sched"}
	} else {
		order = flag.Args()
	}
	for _, name := range order {
		run, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		run()
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments [-scale tiny|small|paper] <experiment>...

experiments:
  fig4       QSkycube vs PQSkycube, single-threaded
  fig5       modelled speedup vs threads, 1 vs 2 sockets
  fig6       CPU execution times vs n, d, distribution
  fig7       GPU and cross-device execution times
  fig8-11    modelled hardware counters (cache, stalls, TLB, CPI)
  fig12      per-device work shares
  fig13      partial skycube computation
  table2     real dataset stand-in specifications
  table3     execution times on real-data stand-ins
  ablations  design-decision ablation timings
  sched      static vs adaptive work-stealing schedule, cross-device MDMC
  all        everything above, in order`)
}
