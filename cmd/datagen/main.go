// Command datagen emits benchmark datasets in the whitespace-separated
// text format the skycubed tool and the library read: one point per line,
// smaller values better.
//
// Usage:
//
//	datagen -dist I -n 100000 -d 8 -seed 42 > data.txt
//	datagen -real WE -scale 0.1 > weather.txt
//	datagen -dist A -n 1000000 -d 6 -shards 4 -out cluster/part
//
// With -shards K the dataset is split into K disjoint partition files named
// <out>-<s>-of-<K>.txt, ready to serve with skycubed -shard. -shard-mode
// picks the split: round-robin (row r goes to shard r mod K, global id
// arithmetic base s / stride K), range (contiguous blocks, base offset /
// stride 1), or the spatial modes grid and angular (positional ids — base =
// total size of earlier shards, stride 1 — whose tight per-shard bounding
// boxes feed the coordinator's -prune region pruning; read-only clusters);
// each file carries its skycubed -shard flags in a comment header.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"skycube"
)

func main() {
	dist := flag.String("dist", "I", "synthetic distribution: I (independent), C (correlated), A (anticorrelated)")
	n := flag.Int("n", 100000, "number of points (synthetic)")
	d := flag.Int("d", 8, "dimensionality (synthetic)")
	seed := flag.Int64("seed", 42, "generator seed")
	real := flag.String("real", "", "real-data stand-in instead: NBA, HH, CT, or WE")
	scale := flag.Float64("scale", 1, "row-count scale for -real, in (0,1]")
	shards := flag.Int("shards", 0, "split into this many disjoint partition files instead of writing stdout")
	shardMode := flag.String("shard-mode", "round-robin", "partition mode with -shards: round-robin, range, grid, or angular")
	out := flag.String("out", "part", "output file prefix with -shards (files named <out>-<s>-of-<K>.txt)")
	joinStub := flag.Bool("join-stub", false, "with -shards: additionally write an empty joinable shard stub <out>-join-of-<K>.txt whose header shows the -join-from bootstrap and split commands")
	flag.Parse()

	var ds *skycube.Dataset
	if *real != "" {
		w, ok := map[string]skycube.RealWorkload{
			"NBA": skycube.NBA, "HH": skycube.Household,
			"CT": skycube.Covertype, "WE": skycube.Weather,
		}[*real]
		if !ok {
			fmt.Fprintf(os.Stderr, "datagen: unknown real dataset %q (NBA, HH, CT, WE)\n", *real)
			os.Exit(2)
		}
		ds = skycube.GenerateReal(w, *scale, *seed)
	} else {
		dd, ok := map[string]skycube.Distribution{
			"I": skycube.Independent, "C": skycube.Correlated, "A": skycube.Anticorrelated,
		}[*dist]
		if !ok {
			fmt.Fprintf(os.Stderr, "datagen: unknown distribution %q (I, C, A)\n", *dist)
			os.Exit(2)
		}
		if *n <= 0 || *d <= 0 || *d > skycube.MaxDims {
			fmt.Fprintf(os.Stderr, "datagen: invalid size %d×%d\n", *n, *d)
			os.Exit(2)
		}
		ds = skycube.GenerateSynthetic(dd, *n, *d, *seed)
	}
	if *shards > 0 {
		if err := writeShards(ds, *shards, *shardMode, *out, *joinStub); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		return
	}
	if *joinStub {
		fmt.Fprintln(os.Stderr, "datagen: -join-stub requires -shards")
		os.Exit(2)
	}
	if err := ds.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

// writeShards splits ds into k disjoint partition files, each headed by a
// comment naming the skycubed -shard flags that serve it. With joinStub it
// additionally writes an empty shard k+1 stub whose header shows the
// -join-from bootstrap and split commands for a live join.
func writeShards(ds *skycube.Dataset, k int, modeName, prefix string, joinStub bool) error {
	var mode skycube.PartitionMode
	switch modeName {
	case "round-robin":
		mode = skycube.RoundRobinPartition
	case "range":
		mode = skycube.RangePartition
	case "grid":
		mode = skycube.GridPartition
	case "angular":
		mode = skycube.AngularPartition
	default:
		return fmt.Errorf("unknown -shard-mode %q (round-robin, range, grid, or angular)", modeName)
	}
	parts, err := ds.Partition(k, mode)
	if err != nil {
		return err
	}
	// Positional modes number global ids by concatenation order, so a
	// shard's id base is the total size of the shards before it (for equal
	// range blocks this reproduces data.RangeOffsets; grid/angular cells
	// are generally unequal).
	posBase := 0
	for s, part := range parts {
		base, stride := s, k
		if mode.Positional() {
			base, stride = posBase, 1
		}
		posBase += part.Len()
		name := fmt.Sprintf("%s-%d-of-%d.txt", prefix, s, k)
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		fmt.Fprintf(w, "# shard %d of %d (%s partition of %d×%d): serve with\n",
			s, k, mode, ds.Len(), ds.Dims())
		fmt.Fprintf(w, "#   skycubed -serve :%d -shard -id-base %d -id-stride %d %s\n",
			9001+s, base, stride, name)
		if err := part.Write(w); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote %s (%d points, id base %d stride %d)\n",
			name, part.Len(), base, stride)
	}
	if joinStub {
		return writeJoinStub(ds, k, prefix, posBase)
	}
	return nil
}

// writeJoinStub emits an empty shard k+1 partition file whose header is a
// ready-to-run recipe for a live join: the new node carries no data file —
// it bootstraps over HTTP from a peer's snapshot stream — and its insert id
// base (the total size of the k real shards, stride 1) stays compatible
// with the positional id arithmetic the other headers use, so no partition
// file needs hand-editing to demonstrate the join.
func writeJoinStub(ds *skycube.Dataset, k int, prefix string, posBase int) error {
	name := fmt.Sprintf("%s-%d-of-%d.txt", prefix, k, k+1)
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# shard %d of %d: joinable empty stub (positional id base %d, stride 1) of %d×%d\n",
		k, k+1, posBase, ds.Len(), ds.Dims())
	fmt.Fprintf(w, "# no data rows on purpose — bootstrap the node from a live peer's snapshot stream:\n")
	fmt.Fprintf(w, "#   skycubed -serve :%d -shard -data-dir ./shard-%d -join-from http://localhost:%d\n",
		9001+k, k, 9001)
	fmt.Fprintf(w, "# then cut it into the ring while the cluster keeps serving:\n")
	fmt.Fprintf(w, "#   skycubectl -coordinator http://localhost:8080 split -shard 0 -child s%d -replicas http://localhost:%d\n",
		k, 9001+k)
	fmt.Fprintf(w, "# (the split seals the child's own insert id block; restarts reinstate it via -id-segments)\n")
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %s (joinable empty stub, id base %d stride 1)\n", name, posBase)
	return nil
}
