// Command datagen emits benchmark datasets in the whitespace-separated
// text format the skycubed tool and the library read: one point per line,
// smaller values better.
//
// Usage:
//
//	datagen -dist I -n 100000 -d 8 -seed 42 > data.txt
//	datagen -real WE -scale 0.1 > weather.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"skycube"
)

func main() {
	dist := flag.String("dist", "I", "synthetic distribution: I (independent), C (correlated), A (anticorrelated)")
	n := flag.Int("n", 100000, "number of points (synthetic)")
	d := flag.Int("d", 8, "dimensionality (synthetic)")
	seed := flag.Int64("seed", 42, "generator seed")
	real := flag.String("real", "", "real-data stand-in instead: NBA, HH, CT, or WE")
	scale := flag.Float64("scale", 1, "row-count scale for -real, in (0,1]")
	flag.Parse()

	var ds *skycube.Dataset
	if *real != "" {
		w, ok := map[string]skycube.RealWorkload{
			"NBA": skycube.NBA, "HH": skycube.Household,
			"CT": skycube.Covertype, "WE": skycube.Weather,
		}[*real]
		if !ok {
			fmt.Fprintf(os.Stderr, "datagen: unknown real dataset %q (NBA, HH, CT, WE)\n", *real)
			os.Exit(2)
		}
		ds = skycube.GenerateReal(w, *scale, *seed)
	} else {
		dd, ok := map[string]skycube.Distribution{
			"I": skycube.Independent, "C": skycube.Correlated, "A": skycube.Anticorrelated,
		}[*dist]
		if !ok {
			fmt.Fprintf(os.Stderr, "datagen: unknown distribution %q (I, C, A)\n", *dist)
			os.Exit(2)
		}
		if *n <= 0 || *d <= 0 || *d > skycube.MaxDims {
			fmt.Fprintf(os.Stderr, "datagen: invalid size %d×%d\n", *n, *d)
			os.Exit(2)
		}
		ds = skycube.GenerateSynthetic(dd, *n, *d, *seed)
	}
	if err := ds.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
