// Command skycubectl drives a skycube cluster coordinator's admin surface:
// inspect the shard map and change membership while the cluster serves.
//
// Usage:
//
//	skycubectl -coordinator http://host:8080 map
//	skycubectl -coordinator http://host:8080 -shard 0 -replica http://host:9003 join
//	skycubectl -coordinator http://host:8080 -shard 0 -replica http://host:9003 drain
//	skycubectl -coordinator http://host:8080 -shard 0 -child 2 -replicas http://host:9005 split
//	skycubectl -coordinator http://host:8080 refresh
//	skycubectl -node http://host:9001 freshness
//
// join adds an already-bootstrapped replica (start it with `skycubed -shard
// -join-from <peer>`) to a shard group; drain removes one; split cuts a
// pre-bootstrapped child shard into the ring — the coordinator quiesces
// writes, converges the child against its source, seals the child's insert
// id block, swaps the map, and prunes both sides. freshness prints a shard
// node's durable frontier (epoch, WAL seq, snapshot seq) — the comparison
// anti-entropy makes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator base URL (e.g. http://host:8080)")
	shard := flag.String("shard", "", "shard name (join, drain, split)")
	replica := flag.String("replica", "", "replica URL (join, drain)")
	child := flag.String("child", "", "new shard name (split)")
	replicas := flag.String("replicas", "", "comma-separated child replica URLs (split)")
	node := flag.String("node", "", "shard node base URL (freshness)")
	timeout := flag.Duration("timeout", 5*time.Minute, "request timeout (a split streams and prunes, so allow minutes)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: skycubectl [flags] map|join|drain|split|refresh|freshness")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if cmd == "freshness" {
		if *node == "" {
			fatal("freshness requires -node")
		}
		out, err := call(ctx, http.MethodGet, strings.TrimRight(*node, "/")+"/shard/info", nil)
		if err != nil {
			fatal(err)
		}
		printJSON(out)
		return
	}

	if *coordinator == "" {
		fatal(cmd + " requires -coordinator")
	}
	base := strings.TrimRight(*coordinator, "/")
	switch cmd {
	case "map":
		out, err := call(ctx, http.MethodGet, base+"/admin/map", nil)
		if err != nil {
			fatal(err)
		}
		printJSON(out)
	case "join", "drain":
		if *shard == "" || *replica == "" {
			fatal(cmd + " requires -shard and -replica")
		}
		body, _ := json.Marshal(map[string]string{"shard": *shard, "replica": *replica})
		out, err := call(ctx, http.MethodPost, base+"/admin/"+cmd, body)
		if err != nil {
			fatal(err)
		}
		printJSON(out)
	case "refresh":
		out, err := call(ctx, http.MethodPost, base+"/admin/refresh", nil)
		if err != nil {
			fatal(err)
		}
		printJSON(out)
	case "split":
		if *shard == "" || *child == "" || *replicas == "" {
			fatal("split requires -shard, -child and -replicas")
		}
		var urls []string
		for _, u := range strings.Split(*replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		body, _ := json.Marshal(map[string]interface{}{
			"shard": *shard, "child": *child, "replicas": urls,
		})
		out, err := call(ctx, http.MethodPost, base+"/admin/split", body)
		if err != nil {
			fatal(err)
		}
		printJSON(out)
	default:
		fatal(fmt.Sprintf("unknown command %q (want map, join, drain, split, refresh or freshness)", cmd))
	}
}

// call issues one request and returns the body; non-2xx statuses are errors
// carrying the response text.
func call(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rdr)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, strings.TrimSpace(string(out)))
	}
	return out, nil
}

// printJSON re-indents a JSON body for the terminal (raw on parse failure).
func printJSON(body []byte) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(body), "", "  "); err != nil {
		os.Stdout.Write(body)
		return
	}
	buf.WriteByte('\n')
	os.Stdout.Write(buf.Bytes())
}

func fatal(v interface{}) {
	fmt.Fprintln(os.Stderr, "skycubectl:", v)
	os.Exit(2)
}
