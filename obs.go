package skycube

import (
	"skycube/internal/obs"
)

// Trace records typed spans of a build — build → level → cuboid for the
// lattice algorithms, prologue phases and per-device chunk grabs for MDMC —
// with monotonic timestamps. Pass one in Options.Trace, then export it with
// WriteChrome (Chrome trace_event JSON, loadable in about://tracing or
// ui.perfetto.dev) to see a per-device work timeline in the style of the
// paper's Figure 12.
//
// A nil *Trace is valid everywhere and records nothing; the instrumented
// hot paths pay only a pointer test ("nil-trace fast path", benchmarked in
// bench_test.go).
type Trace = obs.Trace

// NewTrace returns an empty trace whose epoch is now.
func NewTrace() *Trace { return obs.New() }

// Metrics is a registry of counters, gauges and histograms that Build
// populates (build totals, per-device task shares, modelled GPU counters)
// and the HTTP server serialises at GET /metrics in the Prometheus text
// format. A single registry may be shared across builds and with the
// server; counters accumulate, gauges reflect the latest build.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Progress is a snapshot of a running build, delivered to
// Options.Progress.
type Progress struct {
	// Algorithm is the build's algorithm.
	Algorithm Algorithm
	// Level is the lattice level of the cuboid that just finished (0 for
	// MDMC, which has no levels).
	Level int
	// CuboidsDone / TotalCuboids count materialised cuboids (lattice
	// algorithms; both 0 for MDMC).
	CuboidsDone, TotalCuboids int
	// PointsDone counts completed MDMC point tasks (0 for the lattice
	// algorithms). The total, |S⁺(P)|, is itself a result of the build's
	// prologue, so it is not reported here; it is len(Stats.Shares) tasks
	// summed, or TotalPoints when known.
	PointsDone int
	// TotalPoints is |S⁺(P)| when known, 0 otherwise.
	TotalPoints int
}

// ProgressFunc receives Progress snapshots during Build. It is called from
// build worker goroutines — one call per completed cuboid or point chunk —
// so it must be cheap and concurrency-safe. Long builds are no longer
// silent: wire this to a logger or progress bar.
type ProgressFunc func(Progress)
