package skycube

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// Table 1 flights, dimension 0 = Arrival, 1 = Duration, 2 = Price.
func flightDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := DatasetFromRows([][]float32{
		{12.20, 17, 120},
		{9.00, 12, 148},
		{8.20, 13, 169},
		{21.25, 3, 186},
		{21.25, 5, 196},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

var flightSkylines = map[Subspace][]int32{
	0b100: {0}, 0b010: {3}, 0b001: {2},
	0b101: {0, 1, 2}, 0b110: {0, 1, 3}, 0b011: {1, 2, 3},
	0b111: {0, 1, 2, 3},
}

func TestBuildAllAlgorithmsOnFlights(t *testing.T) {
	ds := flightDataset(t)
	for _, algo := range []Algorithm{QSkycube, PQSkycube, STSC, SDSC, MDMC} {
		cube, stats, err := Build(ds, Options{Algorithm: algo, Threads: 2})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if stats.Elapsed <= 0 {
			t.Errorf("%v: no elapsed time", algo)
		}
		if cube.Dims() != 3 || cube.MaxLevel() != 3 {
			t.Errorf("%v: dims=%d maxLevel=%d", algo, cube.Dims(), cube.MaxLevel())
		}
		for delta, want := range flightSkylines {
			if got := cube.Skyline(delta); !reflect.DeepEqual(got, want) {
				t.Errorf("%v: S_%03b = %v, want %v", algo, delta, got, want)
			}
		}
		if cube.Skyline(0) != nil || cube.Skyline(8) != nil {
			t.Errorf("%v: out-of-range subspace should be nil", algo)
		}
	}
}

func TestBuildOnGPUAndCrossDevice(t *testing.T) {
	ds := GenerateSynthetic(Anticorrelated, 600, 5, 7)
	ref, _, err := Build(ds, Options{Algorithm: MDMC, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []Options{
		{Algorithm: MDMC, GPUs: []GPUModel{GTX980}},
		{Algorithm: SDSC, GPUs: []GPUModel{GTX980}},
		{Algorithm: MDMC, GPUs: []GPUModel{GTX980, GTX980, GTXTitan}, CPUAlso: true, Threads: 2},
		{Algorithm: SDSC, GPUs: []GPUModel{GTX980, GTXTitan}, CPUAlso: true, Threads: 2},
	}
	for _, opt := range cases {
		cube, stats, err := Build(ds, opt)
		if err != nil {
			t.Fatalf("%v GPUs=%d CPUAlso=%v: %v", opt.Algorithm, len(opt.GPUs), opt.CPUAlso, err)
		}
		for _, delta := range AllSubspaces(5) {
			if !reflect.DeepEqual(cube.Skyline(delta), ref.Skyline(delta)) {
				t.Errorf("%v GPUs=%d: δ=%b mismatch", opt.Algorithm, len(opt.GPUs), delta)
			}
		}
		if opt.CPUAlso && len(stats.Shares) == 0 {
			t.Errorf("%v: cross-device run reported no shares", opt.Algorithm)
		}
		if len(stats.GPUModelSeconds) != len(opt.GPUs) {
			t.Errorf("%v: %d model times for %d GPUs", opt.Algorithm, len(stats.GPUModelSeconds), len(opt.GPUs))
		}
	}
}

func TestBuildErrors(t *testing.T) {
	ds := flightDataset(t)
	if _, _, err := Build(nil, Options{}); err == nil {
		t.Error("nil dataset should error")
	}
	if _, _, err := Build(ds, Options{Algorithm: STSC, GPUs: []GPUModel{GTX980}}); err == nil {
		t.Error("STSC on GPU should error (no single-threaded GPU algorithm)")
	}
	if _, _, err := Build(ds, Options{Algorithm: QSkycube, GPUs: []GPUModel{GTX980}}); err == nil {
		t.Error("QSkycube on GPU should error")
	}
	if _, _, err := Build(ds, Options{Algorithm: PQSkycube, GPUs: []GPUModel{GTX980}}); err == nil {
		t.Error("PQSkycube on GPU should error")
	}
	if _, _, err := Build(ds, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestPartialBuild(t *testing.T) {
	ds := GenerateSynthetic(Independent, 300, 6, 3)
	for _, algo := range []Algorithm{STSC, MDMC} {
		cube, _, err := Build(ds, Options{Algorithm: algo, Threads: 2, MaxLevel: 2})
		if err != nil {
			t.Fatal(err)
		}
		if cube.MaxLevel() != 2 {
			t.Errorf("%v: MaxLevel = %d, want 2", algo, cube.MaxLevel())
		}
		if got := cube.Skyline(FullSpace(6)); got != nil {
			t.Errorf("%v: full space materialised in partial cube: %v", algo, got)
		}
		if got := cube.Skyline(SubspaceOf(0, 3)); got == nil {
			t.Errorf("%v: 2-d subspace missing from partial cube", algo)
		}
	}
}

func TestSubspaceHelpers(t *testing.T) {
	if FullSpace(4) != 0b1111 {
		t.Error("FullSpace wrong")
	}
	if SubspaceOf(0, 2) != 0b101 {
		t.Error("SubspaceOf wrong")
	}
	if !reflect.DeepEqual(SubspaceDims(0b101), []int{0, 2}) {
		t.Error("SubspaceDims wrong")
	}
	if SubspaceSize(0b101) != 2 {
		t.Error("SubspaceSize wrong")
	}
	if len(AllSubspaces(3)) != 7 {
		t.Error("AllSubspaces wrong")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for algo, want := range map[Algorithm]string{
		MDMC: "MDMC", STSC: "STSC", SDSC: "SDSC",
		PQSkycube: "PQSkycube", QSkycube: "QSkycube", Algorithm(42): "?",
	} {
		if algo.String() != want {
			t.Errorf("%d.String() = %s, want %s", algo, algo.String(), want)
		}
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, err := NewDataset(0, nil); err == nil {
		t.Error("zero dims should error")
	}
	if _, err := NewDataset(3, []float32{1, 2}); err == nil {
		t.Error("misaligned values should error")
	}
	if _, err := NewDataset(MaxDims+1, make([]float32, MaxDims+1)); err == nil {
		t.Error("too many dims should error")
	}
	if _, err := DatasetFromRows(nil); err == nil {
		t.Error("no rows should error")
	}
	if _, err := DatasetFromRows([][]float32{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
	ds, err := NewDataset(2, []float32{1, 2, 3, 4})
	if err != nil || ds.Len() != 2 || ds.Dims() != 2 {
		t.Errorf("NewDataset: %v, %dx%d", err, ds.Len(), ds.Dims())
	}
	if ds.Point(1)[0] != 3 {
		t.Error("Point accessor wrong")
	}
}

func TestDatasetIO(t *testing.T) {
	ds := GenerateSynthetic(Correlated, 50, 4, 9)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 50 || back.Dims() != 4 {
		t.Errorf("round trip: %dx%d", back.Len(), back.Dims())
	}
	if _, err := ReadDataset(strings.NewReader("")); err == nil {
		t.Error("empty read should error")
	}
}

func TestIDCountComparesRepresentations(t *testing.T) {
	// The HashCube should store dramatically fewer ids than the lattice for
	// the same skycube (App. B.1: up to w-fold compression).
	ds := GenerateSynthetic(Independent, 500, 8, 5)
	lat, _, err := Build(ds, Options{Algorithm: STSC, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	hc, _, err := Build(ds, Options{Algorithm: MDMC, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if hc.IDCount() >= lat.IDCount() {
		t.Errorf("HashCube ids (%d) should be below lattice ids (%d)", hc.IDCount(), lat.IDCount())
	}
}

func TestGenerateRealWorkloads(t *testing.T) {
	for _, w := range []RealWorkload{NBA, Household, Covertype, Weather} {
		ds := GenerateReal(w, 0.005, 3)
		if ds.Len() < 64 {
			t.Errorf("%v: too few rows", w)
		}
	}
}

func TestSDSCHookVariants(t *testing.T) {
	ds := GenerateSynthetic(Independent, 500, 4, 11)
	ref, _, err := Build(ds, Options{Algorithm: SDSC, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []Options{
		{Algorithm: SDSC, Threads: 2, SDSCHook: HookPSkyline},
		{Algorithm: SDSC, GPUs: []GPUModel{GTX980}, SDSCHook: HookGGS},
	}
	for _, opt := range cases {
		cube, _, err := Build(ds, opt)
		if err != nil {
			t.Fatalf("hook %d: %v", opt.SDSCHook, err)
		}
		for _, delta := range AllSubspaces(4) {
			if !reflect.DeepEqual(cube.Skyline(delta), ref.Skyline(delta)) {
				t.Errorf("hook %d: δ=%b mismatch", opt.SDSCHook, delta)
			}
		}
	}
	// Hooks on the wrong architecture are rejected.
	if _, _, err := Build(ds, Options{Algorithm: SDSC, SDSCHook: HookGGS}); err == nil {
		t.Error("GGS on the CPU should error")
	}
	if _, _, err := Build(ds, Options{Algorithm: SDSC, GPUs: []GPUModel{GTX980}, SDSCHook: HookPSkyline}); err == nil {
		t.Error("PSkyline on the GPU should error")
	}
}

func TestMembershipMatchesSkylinesAcrossRepresentations(t *testing.T) {
	ds := GenerateSynthetic(Anticorrelated, 300, 5, 17)
	lat, _, err := Build(ds, Options{Algorithm: STSC, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	hc, _, err := Build(ds, Options{Algorithm: MDMC, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth from the per-subspace listings.
	want := make(map[int32][]Subspace)
	for _, delta := range AllSubspaces(5) {
		for _, id := range lat.Skyline(delta) {
			want[id] = append(want[id], delta)
		}
	}
	for id := int32(0); id < int32(ds.Len()); id++ {
		wl := want[id]
		if got := lat.Membership(id); !reflect.DeepEqual(got, wl) {
			t.Fatalf("lattice membership of %d = %v, want %v", id, got, wl)
		}
		if got := hc.Membership(id); !reflect.DeepEqual(got, wl) {
			t.Fatalf("hashcube membership of %d = %v, want %v", id, got, wl)
		}
	}
}

func TestMembershipPartialCube(t *testing.T) {
	ds := GenerateSynthetic(Independent, 200, 5, 23)
	cube, _, err := Build(ds, Options{Algorithm: MDMC, Threads: 2, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for id := int32(0); id < int32(ds.Len()); id++ {
		for _, delta := range cube.Membership(id) {
			if SubspaceSize(delta) > 2 {
				t.Fatalf("partial cube reported membership above MaxLevel: δ=%b", delta)
			}
		}
	}
}

func TestReadCSVAndNormalize(t *testing.T) {
	in := "name,price,rating\na,100,4.5\nb,200,5.0\nc,150,3.0\n"
	ds, err := ReadCSVDataset(strings.NewReader(in), CSVOptions{Header: true, Columns: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.Dims() != 2 {
		t.Fatalf("shape %dx%d", ds.Len(), ds.Dims())
	}
	norm, err := ds.Normalize([]Direction{LowerBetter, HigherBetter})
	if err != nil {
		t.Fatal(err)
	}
	cube, _, err := Build(norm, Options{Algorithm: MDMC, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// a (cheapest-but-good) and b (best-rated) are the skyline; c is
	// dominated by a (more expensive, worse rating).
	got := cube.Skyline(FullSpace(2))
	if !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Errorf("skyline = %v, want [0 1]", got)
	}
	if _, err := ds.Normalize([]Direction{LowerBetter}); err == nil {
		t.Error("direction count mismatch should error")
	}
	if _, err := ReadCSVDataset(strings.NewReader("x\n"), CSVOptions{}); err == nil {
		t.Error("non-numeric csv should error")
	}
}
