// Products demonstrates the realistic ingestion path: raw CSV with mixed
// attribute orientations (price and weight low-is-better, battery life and
// rating high-is-better), normalised into skyline orientation, then a
// skycube answering shopping-style trade-off queries.
package main

import (
	"fmt"
	"log"
	"strings"

	"skycube"
)

const catalogue = `name,price,battery_h,weight_g,rating
AeroBook 13,999,14,1190,4.6
AeroBook 13 (2023),899,12,1210,4.4
TabletPro,649,10,460,4.2
TabletPro Max,899,11,470,4.5
UltraSlim,1299,18,980,4.7
BudgetNote,399,7,1650,3.8
BudgetNote Plus,479,9,1580,4.0
Workstation X,2199,6,2450,4.4
Gamer GX,1799,5,2300,4.3
FieldPad,549,22,610,3.9
`

var dimNames = []string{"price", "battery", "weight", "rating"}

func main() {
	// Column 0 is the product name; the four numeric columns become
	// dimensions.
	ds, err := skycube.ReadCSVDataset(strings.NewReader(catalogue), skycube.CSVOptions{
		Header:  true,
		Columns: []int{1, 2, 3, 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	names := parseNames(catalogue)

	// Orient: price and weight are already lower-is-better; battery life
	// and rating must be mirrored.
	norm, err := ds.Normalize([]skycube.Direction{
		skycube.LowerBetter,  // price
		skycube.HigherBetter, // battery hours
		skycube.LowerBetter,  // weight
		skycube.HigherBetter, // rating
	})
	if err != nil {
		log.Fatal(err)
	}

	cube, _, err := skycube.Build(norm, skycube.Options{Algorithm: skycube.MDMC, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, delta skycube.Subspace) {
		ids := cube.Skyline(delta)
		fmt.Printf("%s:\n", label)
		for _, id := range ids {
			fmt.Printf("  %-22s $%-6.0f %4.0fh %6.0fg  %.1f★\n", names[id],
				ds.Point(int(id))[0], ds.Point(int(id))[1], ds.Point(int(id))[2], ds.Point(int(id))[3])
		}
	}

	show("Overall undominated products (all four criteria)", skycube.FullSpace(4))
	show("\nTravellers: battery × weight", skycube.SubspaceOf(1, 2))
	show("\nBudget buyers: price × rating", skycube.SubspaceOf(0, 3))

	// The inverse question: in which criteria combinations is a given
	// product a defensible choice?
	fmt.Println("\nWhere each product is in the skyline:")
	for id := int32(0); id < int32(ds.Len()); id++ {
		subspaces := cube.Membership(id)
		best := ""
		if len(subspaces) > 0 {
			parts := make([]string, 0, 3)
			for _, delta := range subspaces[:min(3, len(subspaces))] {
				var dims []string
				for _, d := range skycube.SubspaceDims(delta) {
					dims = append(dims, dimNames[d])
				}
				parts = append(parts, "{"+strings.Join(dims, ",")+"}")
			}
			best = strings.Join(parts, " ")
			if len(subspaces) > 3 {
				best += fmt.Sprintf(" … (%d total)", len(subspaces))
			}
		} else {
			best = "never — always dominated"
		}
		fmt.Printf("  %-22s %s\n", names[id], best)
	}
}

func parseNames(csv string) []string {
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	names := make([]string, 0, len(lines)-1)
	for _, l := range lines[1:] {
		names = append(names, strings.SplitN(l, ",", 2)[0])
	}
	return names
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
