// NBA demonstrates multi-criteria analysis on the basketball stand-in
// dataset (paper App. A.1): finding "well-rounded" player seasons — ones
// that excel at no single statistic but offer a strong composite — by
// comparing per-statistic top lists against subspace skylines.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"

	"skycube"
)

var statNames = []string{
	"points", "rebounds", "assists", "steals",
	"blocks", "fg%", "ft%", "minutes",
}

func main() {
	// The stand-in reproduces the shape of the NBA dataset: 17 264 player
	// seasons × 8 correlated counting statistics. Values are normalised so
	// smaller is better (a low value = an excellent statistic).
	ds := skycube.GenerateReal(skycube.NBA, 1, 7)
	fmt.Printf("dataset: %d player seasons × %d statistics\n", ds.Len(), ds.Dims())

	cube, stats, err := skycube.Build(ds, skycube.Options{
		Algorithm: skycube.MDMC,
		Threads:   runtime.NumCPU(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skycube built in %v\n\n", stats.Elapsed)

	// Traditional analysis: rank players on each statistic independently —
	// the 1-dimensional subspace skylines.
	fmt.Println("per-statistic leaders (1-d skylines):")
	leaders := map[int32]int{}
	for j := 0; j < ds.Dims(); j++ {
		ids := cube.Skyline(skycube.SubspaceOf(j))
		fmt.Printf("  %-8s: %d tied leader(s)\n", statNames[j], len(ids))
		for _, id := range ids {
			leaders[id]++
		}
	}

	// Skyline analysis: the full-space skyline also surfaces players who
	// lead no single statistic but are undominated as a package.
	full := cube.Skyline(skycube.FullSpace(ds.Dims()))
	wellRounded := make([]int32, 0)
	for _, id := range full {
		if leaders[id] == 0 {
			wellRounded = append(wellRounded, id)
		}
	}
	fmt.Printf("\nfull-space skyline: %d seasons; %d lead at least one statistic,\n",
		len(full), len(full)-len(wellRounded))
	fmt.Printf("and %d are well-rounded (no single-statistic lead):\n", len(wellRounded))
	for _, id := range wellRounded[:min(3, len(wellRounded))] {
		fmt.Printf("  season %d: %v\n", id, ds.Point(int(id)))
	}

	// Scouting a specific profile: a playmaking guard — assists, steals,
	// minutes. The 3-d subspace skyline is the shortlist.
	guard := skycube.SubspaceOf(2, 3, 7)
	shortlist := cube.Skyline(guard)
	fmt.Printf("\nplaymaking-guard shortlist (assists, steals, minutes): %d seasons\n", len(shortlist))

	// Show how selectivity decays as criteria are added — the motivation
	// for materialising every subspace (paper §1).
	type lvlStat struct{ level, total, count int }
	var byLevel []lvlStat
	sizes := map[int][]int{}
	for _, delta := range skycube.AllSubspaces(ds.Dims()) {
		l := skycube.SubspaceSize(delta)
		sizes[l] = append(sizes[l], len(cube.Skyline(delta)))
	}
	for l := 1; l <= ds.Dims(); l++ {
		total := 0
		for _, s := range sizes[l] {
			total += s
		}
		byLevel = append(byLevel, lvlStat{l, total, len(sizes[l])})
	}
	sort.Slice(byLevel, func(a, b int) bool { return byLevel[a].level < byLevel[b].level })
	fmt.Println("\naverage skyline size by number of criteria:")
	for _, s := range byLevel {
		fmt.Printf("  %d criteria: %6.1f points (over %d subspaces)\n",
			s.level, float64(s.total)/float64(s.count), s.count)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
