// Hetero demonstrates cross-device skycube construction (paper §1, §7.2
// "Heterogeneous processing"): the CPU and three modelled GPUs — two GTX
// 980s and an older Titan — cooperate on one build, pulling parallel tasks
// from a shared queue so each device contributes in proportion to its
// throughput (the paper's Figure 12).
package main

import (
	"fmt"
	"log"
	"runtime"

	"skycube"
)

func main() {
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 30000, 8, 1)
	fmt.Printf("dataset: %d×%d anticorrelated (large extended skyline → many tasks)\n",
		ds.Len(), ds.Dims())
	threads := runtime.NumCPU()
	ecosystem := []skycube.GPUModel{skycube.GTX980, skycube.GTX980, skycube.GTXTitan}

	for _, algo := range []skycube.Algorithm{skycube.MDMC, skycube.SDSC} {
		cube, stats, err := skycube.Build(ds, skycube.Options{
			Algorithm: algo,
			Threads:   threads,
			GPUs:      ecosystem,
			CPUAlso:   true,
		})
		if err != nil {
			log.Fatal(err)
		}
		unit := "points"
		if algo == skycube.SDSC {
			unit = "cuboids"
		}
		fmt.Printf("\n%v across 2 CPU sockets + 3 GPUs: %v\n", algo, stats.Elapsed)
		fmt.Printf("work distribution (%s):\n", unit)
		for _, sh := range stats.Shares {
			bar := ""
			for i := 0; i < int(sh.Fraction*50); i++ {
				bar += "#"
			}
			fmt.Printf("  %-6s %7d (%5.1f%%) %s\n", sh.Name, sh.Tasks, sh.Fraction*100, bar)
		}
		fmt.Printf("full-space skyline: %d points\n",
			len(cube.Skyline(skycube.FullSpace(ds.Dims()))))
		for i, ms := range stats.GPUModelSeconds {
			fmt.Printf("  GPU %d modelled device time: %.3fs\n", i, ms)
		}
	}
}
