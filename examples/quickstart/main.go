// Quickstart: generate a benchmark dataset, build its skycube with the
// MDMC template, and query a few subspace skylines.
package main

import (
	"fmt"
	"log"
	"runtime"

	"skycube"
)

func main() {
	// 20 000 points over 6 dimensions, independently distributed. Smaller
	// values are better on every dimension.
	ds := skycube.GenerateSynthetic(skycube.Independent, 20000, 6, 42)

	cube, stats, err := skycube.Build(ds, skycube.Options{
		Algorithm: skycube.MDMC, // the paper's fastest template
		Threads:   runtime.NumCPU(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built the skycube of %d×%d in %v\n", ds.Len(), ds.Dims(), stats.Elapsed)
	fmt.Printf("materialised %d subspace skylines using %d stored ids\n",
		len(skycube.AllSubspaces(ds.Dims())), cube.IDCount())

	// The full-space skyline: points with some appealing trade-off over all
	// six criteria.
	full := skycube.FullSpace(ds.Dims())
	fmt.Printf("full-space skyline: %d points\n", len(cube.Skyline(full)))

	// A user interested only in dimensions 1 and 4 sees a much more
	// selective skyline.
	sub := skycube.SubspaceOf(1, 4)
	ids := cube.Skyline(sub)
	fmt.Printf("skyline over dims {1,4}: %d points\n", len(ids))
	for _, id := range ids[:min(5, len(ids))] {
		fmt.Printf("  point %d: %v\n", id, ds.Point(int(id)))
	}

	// Every subspace is materialised, so arbitrary follow-up queries are
	// free of further computation.
	for _, delta := range []skycube.Subspace{0b000011, 0b101010, 0b111000} {
		fmt.Printf("skyline of δ=%06b (%d dims): %d points\n",
			delta, skycube.SubspaceSize(delta), len(cube.Skyline(delta)))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
