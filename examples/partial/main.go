// Partial demonstrates partial skycube computation (paper App. A.2):
// materialising only the low-dimensional subspaces, which are the
// selective — and therefore useful — ones, at a fraction of the cost.
package main

import (
	"fmt"
	"log"
	"runtime"

	"skycube"
)

func main() {
	// Weather-like data: 15 monthly/positional criteria. High-dimensional
	// subspace skylines of such data contain most of the dataset, so users
	// rarely want them; the paper's suggestion is to cap materialisation.
	ds := skycube.GenerateReal(skycube.Weather, 0.01, 99)
	fmt.Printf("dataset: %d×%d (weather stand-in)\n", ds.Len(), ds.Dims())
	threads := runtime.NumCPU()

	// Materialise only subspaces with ≤ 4 dimensions: 1 940 of the 32 767
	// cuboids.
	const maxLevel = 4
	partial, pStats, err := skycube.Build(ds, skycube.Options{
		Algorithm: skycube.MDMC,
		Threads:   threads,
		MaxLevel:  maxLevel,
	})
	if err != nil {
		log.Fatal(err)
	}
	covered := 0
	for _, delta := range skycube.AllSubspaces(ds.Dims()) {
		if skycube.SubspaceSize(delta) <= maxLevel {
			covered++
		}
	}
	fmt.Printf("partial skycube to level %d: %d of %d subspaces in %v\n",
		maxLevel, covered, len(skycube.AllSubspaces(ds.Dims())), pStats.Elapsed)

	// Compare with STSC, for which partial computation pays off even more
	// (the lattice-based methods skip whole levels; MD saves only refine
	// work — the paper's Figure 13 contrast).
	lat, lStats, err := skycube.Build(ds, skycube.Options{
		Algorithm: skycube.STSC,
		Threads:   threads,
		MaxLevel:  maxLevel,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STSC partial build: %v (lattice, %d stored ids)\n", lStats.Elapsed, lat.IDCount())

	// Queries within the materialised levels work as usual …
	delta := skycube.SubspaceOf(0, 1, 2) // latitude, longitude, elevation
	fmt.Printf("skyline over position dims {0,1,2}: %d points\n", len(partial.Skyline(delta)))

	// … while anything above the cap is reported as unmaterialised.
	if partial.Skyline(skycube.FullSpace(ds.Dims())) == nil {
		fmt.Println("full-space skyline: not materialised (above MaxLevel), as requested")
	}

	// The win: a full build for comparison.
	_, fStats, err := skycube.Build(ds, skycube.Options{
		Algorithm: skycube.MDMC,
		Threads:   threads,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full MDMC build for comparison: %v (partial saved %.0f%%)\n",
		fStats.Elapsed, 100*(1-pStats.Elapsed.Seconds()/fStats.Elapsed.Seconds()))
}
