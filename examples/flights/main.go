// Flights reproduces the paper's running example (Table 1, Figure 1):
// five flights from A to B with three criteria — arrival time, duration
// and price — and the complete skycube over them, printed subspace by
// subspace as in the lattice of Figure 1a.
package main

import (
	"fmt"
	"log"
	"strings"

	"skycube"
)

// Dimension order matches the paper's bitmask convention: bit 0 = Arrival,
// bit 1 = Duration, bit 2 = Price.
var dimNames = []string{"Arrival", "Duration", "Price"}

var flights = []struct {
	name     string
	route    string
	price    float32 // $ — lower is better
	duration float32 // hours — lower is better
	arrival  float32 // clock time — earlier is better
}{
	{"f0", "860→485→4759", 120, 17, 12.20},
	{"f1", "1264→661", 148, 12, 9.00},
	{"f2", "860→3655", 169, 13, 8.20},
	{"f3", "1260→659", 186, 3, 21.25},
	{"f4", "1258→659", 196, 5, 21.25},
}

func main() {
	rows := make([][]float32, len(flights))
	for i, f := range flights {
		rows[i] = []float32{f.arrival, f.duration, f.price}
	}
	ds, err := skycube.DatasetFromRows(rows)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Five flights from point A to B (Table 1):")
	for _, f := range flights {
		fmt.Printf("  %s  %-14s $%3.0f  %4.1f hr  arrives %05.2f\n",
			f.name, f.route, f.price, f.duration, f.arrival)
	}
	fmt.Println()

	cube, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.MDMC, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The skycube (Figure 1a), top of the lattice first:")
	subspaces := skycube.AllSubspaces(ds.Dims())
	// Print by descending level, the lattice's visual order.
	for level := ds.Dims(); level >= 1; level-- {
		for _, delta := range subspaces {
			if skycube.SubspaceSize(delta) != level {
				continue
			}
			names := make([]string, 0, level)
			for _, d := range skycube.SubspaceDims(delta) {
				names = append(names, dimNames[d])
			}
			ids := cube.Skyline(delta)
			labels := make([]string, len(ids))
			for i, id := range ids {
				labels[i] = flights[id].name
			}
			fmt.Printf("  S%d {%s}: {%s}\n", delta, strings.Join(names, ", "), strings.Join(labels, ", "))
		}
	}

	fmt.Println()
	fmt.Println("Observations from the paper:")
	full := cube.Skyline(skycube.FullSpace(3))
	fmt.Printf("  f4 is in no skyline: it is dominated by f3 (full-space skyline: %v).\n", names(full))
	da := cube.Skyline(skycube.SubspaceOf(0, 1)) // Duration, Arrival
	fmt.Printf("  A traveller unconcerned by price sees S3 = %v — f0 drops out.\n", names(da))
}

func names(ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = flights[id].name
	}
	return out
}
