package skycube

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"skycube/internal/hetero"
	"skycube/internal/obs"
)

// TestBuildTraceCoverage checks the tentpole acceptance criterion: a traced
// MDMC build emits spans whose build-category union covers ≥ 99% of
// Stats.Elapsed, and the Chrome export is valid JSON.
func TestBuildTraceCoverage(t *testing.T) {
	ds := GenerateSynthetic(Anticorrelated, 2000, 6, 11)
	tr := NewTrace()
	_, stats, err := Build(ds, Options{Algorithm: MDMC, Threads: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("trace recorded no spans")
	}
	if cov := tr.Coverage(obs.CatBuild, stats.Elapsed); cov < 0.99 {
		t.Errorf("build span covers %.4f of Elapsed, want ≥ 0.99", cov)
	}
	var buf strings.Builder
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < tr.Len() {
		t.Errorf("Chrome export has %d events for %d spans", len(doc.TraceEvents), tr.Len())
	}
	// The prepare phases and the per-worker chunk tracks must be present.
	tracks := map[string]bool{}
	for _, trk := range tr.Tracks() {
		tracks[trk] = true
	}
	if !tracks["build"] || !tracks["prepare"] || !tracks["cpu-0"] {
		t.Errorf("missing expected tracks in %v", tr.Tracks())
	}
}

// TestBuildTraceLattice smoke-tests span recording on the lattice paths.
func TestBuildTraceLattice(t *testing.T) {
	ds := GenerateSynthetic(Independent, 500, 5, 4)
	for _, algo := range []Algorithm{STSC, SDSC, PQSkycube, QSkycube} {
		tr := NewTrace()
		_, stats, err := Build(ds, Options{Algorithm: algo, Threads: 2, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		spans := tr.Spans()
		var cuboids int
		for _, s := range spans {
			if s.Cat == obs.CatCuboid {
				cuboids++
			}
		}
		// One span per non-empty subspace of a 5-d space.
		if want := 31; cuboids != want {
			t.Errorf("%v: %d cuboid spans, want %d", algo, cuboids, want)
		}
		if cov := tr.Coverage(obs.CatBuild, stats.Elapsed); cov < 0.99 {
			t.Errorf("%v: build coverage %.4f", algo, cov)
		}
	}
}

// TestBuildTraceCrossDevice smoke-tests the hetero paths: spans land on
// device-named tracks.
func TestBuildTraceCrossDevice(t *testing.T) {
	ds := GenerateSynthetic(Anticorrelated, 800, 5, 6)
	for _, algo := range []Algorithm{SDSC, MDMC} {
		tr := NewTrace()
		_, _, err := Build(ds, Options{
			Algorithm: algo, Threads: 2, GPUs: []GPUModel{GTX980}, CPUAlso: true, Trace: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, trk := range tr.Tracks() {
			seen[hetero.DeviceOfTrack(trk)] = true
		}
		if !seen["GTX980-1"] && !seen["CPU0"] && !seen["CPU1"] {
			t.Errorf("%v: no device tracks in %v", algo, tr.Tracks())
		}
	}
}

// TestBuildProgress checks the ProgressFunc option on both a lattice and
// the MDMC algorithm.
func TestBuildProgress(t *testing.T) {
	ds := GenerateSynthetic(Independent, 400, 5, 8)

	var calls, lastDone atomic.Int64
	_, _, err := Build(ds, Options{Algorithm: SDSC, Threads: 2, Progress: func(p Progress) {
		calls.Add(1)
		if p.Algorithm != SDSC || p.TotalCuboids != 31 {
			t.Errorf("progress = %+v", p)
		}
		if int64(p.CuboidsDone) > lastDone.Load() {
			lastDone.Store(int64(p.CuboidsDone))
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 31 || lastDone.Load() != 31 {
		t.Errorf("SDSC progress: %d calls, max done %d, want 31", calls.Load(), lastDone.Load())
	}

	var points atomic.Int64
	var total atomic.Int64
	_, _, err = Build(ds, Options{Algorithm: MDMC, Threads: 2, Progress: func(p Progress) {
		points.Store(int64(p.PointsDone))
		total.Store(int64(p.TotalPoints))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if points.Load() == 0 || points.Load() != total.Load() {
		t.Errorf("MDMC progress ended at %d/%d points", points.Load(), total.Load())
	}
}

// TestBuildMetrics checks the Metrics option populates build counters.
func TestBuildMetrics(t *testing.T) {
	ds := GenerateSynthetic(Independent, 400, 5, 8)
	reg := NewMetrics()
	_, _, err := Build(ds, Options{Algorithm: MDMC, Threads: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Build(ds, Options{
		Algorithm: SDSC, Threads: 2, GPUs: []GPUModel{GTX980}, CPUAlso: true, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`skycube_builds_total{algorithm="MDMC"} 1`,
		`skycube_builds_total{algorithm="SDSC"} 1`,
		"skycube_build_seconds_bucket",
		"skycube_points_total",
		"skycube_cuboids_total",
		`skycube_device_share_fraction{device="CPU0"}`,
		`skycube_gpu_instructions_total{device="GTX980-1"}`,
		`skycube_gpu_model_seconds{device="GTX980-1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestMaterialisedCuboids pins the TotalCuboids arithmetic.
func TestMaterialisedCuboids(t *testing.T) {
	for _, c := range []struct{ d, maxLevel, want int }{
		{5, 0, 31},
		{5, 5, 31},
		{5, 9, 31},
		{5, 2, 5 + 10},
		{6, 1, 6},
	} {
		if got := materialisedCuboids(c.d, c.maxLevel); got != c.want {
			t.Errorf("materialisedCuboids(%d, %d) = %d, want %d", c.d, c.maxLevel, got, c.want)
		}
	}
}
