package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: skycube/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeHot-8   	   20000	       251.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeHot-8   	   20000	       249.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeHot-8   	   20000	       267.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeCold-8  	   20000	     11983 ns/op	    3084 B/op	      28 allocs/op
PASS
ok  	skycube/internal/server	2.412s
pkg: skycube/internal/wal
BenchmarkWALCommit/interval-8         	    5000	       801.2 ns/op	     112 B/op	       5 allocs/op
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	hot := results["BenchmarkServeHot"]
	if hot == nil {
		t.Fatal("BenchmarkServeHot not parsed")
	}
	// Minimum of the three runs, with the -8 suffix stripped.
	if hot.nsPerOp != 249.9 || hot.runs != 3 {
		t.Fatalf("hot = %+v, want min 249.9 over 3 runs", hot)
	}
	if hot.pkg != "skycube/internal/server" || !hot.hasAllocs || hot.allocs != 0 {
		t.Fatalf("hot metadata = %+v", hot)
	}
	cold := results["BenchmarkServeCold"]
	if cold == nil || cold.nsPerOp != 11983 || cold.allocs != 28 {
		t.Fatalf("cold = %+v", cold)
	}
	// Sub-benchmark names keep their slash and pick up the later pkg header.
	sub := results["BenchmarkWALCommit/interval"]
	if sub == nil || sub.pkg != "skycube/internal/wal" || sub.nsPerOp != 801.2 {
		t.Fatalf("sub-benchmark = %+v", sub)
	}
}

func TestParseBenchWithoutBenchmem(t *testing.T) {
	results, err := parseBench(strings.NewReader(
		"BenchmarkX-4   1000   500.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	x := results["BenchmarkX"]
	if x == nil || x.hasAllocs || x.nsPerOp != 500.0 {
		t.Fatalf("no-benchmem line = %+v", x)
	}
}

func TestGateThreshold(t *testing.T) {
	base := []baselineEntry{
		{Name: "BenchmarkServeHot", Package: "skycube/internal/server", NsPerOp: 252.0},
		{Name: "BenchmarkServeCold", Package: "skycube/internal/server", NsPerOp: 11572},
		{Name: "BenchmarkAbsent", Package: "skycube/internal/server", NsPerOp: 100},
	}
	results := map[string]*result{
		// 5% slower: inside the 30% gate.
		"BenchmarkServeHot": {name: "BenchmarkServeHot", pkg: "skycube/internal/server", nsPerOp: 264.6},
		// 50% slower: regression.
		"BenchmarkServeCold": {name: "BenchmarkServeCold", pkg: "skycube/internal/server", nsPerOp: 17358},
		// No baseline: reported, never failed.
		"BenchmarkNovel": {name: "BenchmarkNovel", nsPerOp: 1},
	}
	report, failures := gate(base, results, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkServeCold") {
		t.Fatalf("failures = %v, want exactly the 50%% regression", failures)
	}
	joined := strings.Join(report, "\n")
	for _, want := range []string{"BenchmarkServeHot", "BenchmarkAbsent", "BenchmarkNovel"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("report missing %s:\n%s", want, joined)
		}
	}
}

func TestGateImprovementPasses(t *testing.T) {
	base := []baselineEntry{{Name: "BenchmarkY", NsPerOp: 1000}}
	results := map[string]*result{"BenchmarkY": {name: "BenchmarkY", nsPerOp: 400}}
	if _, failures := gate(base, results, 0.30); len(failures) != 0 {
		t.Fatalf("a 60%% improvement failed the gate: %v", failures)
	}
}

func TestGateAllocRegression(t *testing.T) {
	base := []baselineEntry{
		{Name: "BenchmarkHot", NsPerOp: 250, AllocsPerOp: 0},
	}
	results := map[string]*result{
		"BenchmarkHot": {name: "BenchmarkHot", nsPerOp: 251, hasAllocs: true, allocs: 2},
	}
	_, failures := gate(base, results, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocation-free") {
		t.Fatalf("failures = %v, want the alloc regression", failures)
	}
	// Without -benchmem columns the alloc gate cannot judge and stays quiet.
	results["BenchmarkHot"].hasAllocs = false
	if _, failures := gate(base, results, 0.30); len(failures) != 0 {
		t.Fatalf("alloc gate fired without benchmem data: %v", failures)
	}
}

func TestGatePackageMismatch(t *testing.T) {
	base := []baselineEntry{{Name: "BenchmarkZ", Package: "skycube/internal/server", NsPerOp: 100}}
	results := map[string]*result{
		"BenchmarkZ": {name: "BenchmarkZ", pkg: "skycube/internal/wal", nsPerOp: 100},
	}
	_, failures := gate(base, results, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "MISMATCH") {
		t.Fatalf("failures = %v, want a package mismatch", failures)
	}
}
