// Command benchgate compares `go test -bench` output against a committed
// baseline file (BENCH_serve.json, BENCH_wal.json) and fails on performance
// regressions, making the CI bench-smoke job a gate instead of a printout.
//
// Usage:
//
//	go test -run=NONE -bench ... -benchmem ./... | tee bench.txt
//	benchgate -baseline BENCH_serve.json bench.txt
//
// A benchmark regresses when its best observed ns/op exceeds the baseline's
// by more than -threshold (default 0.30, the 30%% gate), or when a
// baseline-zero allocs/op benchmark starts allocating. Benchmarks present in
// only one of the two sides are reported but never fail the gate, so the
// baseline does not have to enumerate every bench CI happens to run.
//
// With -count > 1 the minimum per benchmark is compared — the minimum is the
// least noisy estimator of the true cost on a shared CI runner.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// baselineFile mirrors the committed BENCH_*.json layout.
type baselineFile struct {
	Description string          `json:"description"`
	Benchmarks  []baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Note        string  `json:"note"`
}

// result is the best (minimum ns/op) observation of one benchmark in the
// parsed output.
type result struct {
	name    string
	pkg     string
	nsPerOp float64
	allocs  float64
	// hasAllocs records whether the line carried -benchmem columns.
	hasAllocs bool
	runs      int
}

// benchLine matches one go-test benchmark result line. The -N GOMAXPROCS
// suffix is stripped from the name; sub-benchmark slashes stay.
var benchLine = regexp.MustCompile(
	`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9]+) allocs/op)?`)

var pkgLine = regexp.MustCompile(`^pkg:\s+(\S+)`)

// parseBench reads go-test bench output, tracking `pkg:` headers and keeping
// the minimum ns/op per benchmark name.
func parseBench(r io.Reader) (map[string]*result, error) {
	out := map[string]*result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		name := m[1]
		res := out[name]
		if res == nil {
			res = &result{name: name, pkg: pkg, nsPerOp: ns}
			out[name] = res
		}
		res.runs++
		if ns < res.nsPerOp {
			res.nsPerOp = ns
		}
		if m[4] != "" {
			allocs, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %v", line, err)
			}
			if !res.hasAllocs || allocs > res.allocs {
				res.allocs = allocs // worst-case allocs: they should be deterministic
			}
			res.hasAllocs = true
		}
	}
	return out, sc.Err()
}

// gate compares results against the baseline. It returns human-readable
// report lines and the subset that are hard failures.
func gate(base []baselineEntry, results map[string]*result, threshold float64) (report, failures []string) {
	for _, b := range base {
		res, ok := results[b.Name]
		if !ok {
			report = append(report, fmt.Sprintf("   skip %-42s not in this run", b.Name))
			continue
		}
		if res.pkg != "" && b.Package != "" && res.pkg != b.Package {
			failures = append(failures, fmt.Sprintf("MISMATCH %s ran in %s, baseline names %s", b.Name, res.pkg, b.Package))
			continue
		}
		delta := (res.nsPerOp - b.NsPerOp) / b.NsPerOp
		line := fmt.Sprintf("%-46s %10.1f ns/op vs baseline %10.1f (%+.1f%%)",
			b.Name, res.nsPerOp, b.NsPerOp, delta*100)
		switch {
		case delta > threshold:
			failures = append(failures, "REGRESSION "+line)
		default:
			report = append(report, "     ok "+line)
		}
		if res.hasAllocs && b.AllocsPerOp == 0 && res.allocs > 0 {
			failures = append(failures, fmt.Sprintf(
				"REGRESSION %-42s allocates %.0f allocs/op, baseline is allocation-free", b.Name, res.allocs))
		}
	}
	known := map[string]bool{}
	for _, b := range base {
		known[b.Name] = true
	}
	for name := range results {
		if !known[name] {
			report = append(report, fmt.Sprintf("   note %-42s has no baseline entry", name))
		}
	}
	return report, failures
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON file (BENCH_serve.json layout)")
	threshold := flag.Float64("threshold", 0.30, "relative ns/op regression that fails the gate")
	optional := flag.Bool("optional", false, "treat a missing baseline file as a pass (per-file opt-in for baselines not yet committed on every branch)")
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		if *optional && os.IsNotExist(err) {
			fmt.Printf("benchgate: %s absent, -optional set — skipping gate\n", *baseline)
			return
		}
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *baseline, err)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		var readers []io.Reader
		for _, name := range flag.Args() {
			f, err := os.Open(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchgate:", err)
				os.Exit(2)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	results, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines in input")
		os.Exit(2)
	}

	report, failures := gate(bf.Benchmarks, results, *threshold)
	fmt.Printf("benchgate: %s, threshold %+.0f%%\n", *baseline, *threshold*100)
	for _, l := range report {
		fmt.Println(l)
	}
	for _, l := range failures {
		fmt.Println(l)
	}
	if len(failures) > 0 {
		fmt.Printf("benchgate: %d regression(s)\n", len(failures))
		os.Exit(1)
	}
	fmt.Println("benchgate: pass")
}
