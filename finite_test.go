// Non-finite coordinates (NaN, ±Inf) poison dominance comparisons — every
// comparison against NaN is false, so a NaN point can sit undominated in
// every subspace forever. They are rejected at every ingestion path.
package skycube_test

import (
	"math"
	"strings"
	"testing"

	"skycube"
)

func TestNewDatasetRejectsNonFinite(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	cases := []struct {
		name string
		vals []float32
	}{
		{"NaN", []float32{0.1, 0.2, nan, 0.4}},
		{"+Inf", []float32{inf, 0.2, 0.3, 0.4}},
		{"-Inf", []float32{0.1, 0.2, 0.3, float32(math.Inf(-1))}},
	}
	for _, c := range cases {
		if _, err := skycube.NewDataset(2, c.vals); err == nil {
			t.Errorf("NewDataset accepted a %s coordinate", c.name)
		}
	}
	if _, err := skycube.NewDataset(2, []float32{0.1, 0.2, 0.3, 0.4}); err != nil {
		t.Fatalf("NewDataset rejected finite data: %v", err)
	}
}

func TestDatasetFromRowsRejectsNonFinite(t *testing.T) {
	rows := [][]float32{{0.1, 0.2}, {float32(math.NaN()), 0.3}}
	if _, err := skycube.DatasetFromRows(rows); err == nil {
		t.Fatal("DatasetFromRows accepted a NaN coordinate")
	}
}

func TestReadDatasetRejectsNonFinite(t *testing.T) {
	for _, text := range []string{
		"0.1 0.2\nNaN 0.3\n",
		"0.1 0.2\n0.3 +Inf\n",
		"0.1 0.2\n-Inf 0.3\n",
		"0.1 0.2\n1e999 0.3\n", // overflows to +Inf during parsing
	} {
		if _, err := skycube.ReadDataset(strings.NewReader(text)); err == nil {
			t.Errorf("ReadDataset accepted %q", text)
		}
	}
	if _, err := skycube.ReadDataset(strings.NewReader("0.1 0.2\n0.3 0.4\n")); err != nil {
		t.Fatalf("ReadDataset rejected finite data: %v", err)
	}
}

func TestUpdaterInsertRejectsNonFinite(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 50, 3, 1)
	up, err := skycube.NewUpdater(ds, skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	for _, p := range [][]float32{
		{float32(math.NaN()), 0.2, 0.3},
		{0.1, float32(math.Inf(1)), 0.3},
		{0.1, 0.2, float32(math.Inf(-1))},
	} {
		if _, err := up.Insert(p); err == nil {
			t.Errorf("Insert accepted non-finite point %v", p)
		}
	}
	if ins, _ := up.Pending(); ins != 0 {
		t.Fatalf("rejected inserts left %d points buffered", ins)
	}
	if _, err := up.Insert([]float32{0.1, 0.2, 0.3}); err != nil {
		t.Fatalf("Insert rejected a finite point: %v", err)
	}
}
