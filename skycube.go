// Package skycube computes skycubes — the materialisation of the skyline
// query result in every non-empty subspace of a multidimensional dataset —
// with the template algorithms of Bøgh, Chester, Šidlauskas and Assent,
// "Template Skycube Algorithms for Heterogeneous Parallelism on Multicore
// and GPU Architectures" (SIGMOD 2017).
//
// Three parallel templates are provided, plus the sequential QSkycube
// state-of-the-art baseline and its direct parallelisation:
//
//   - STSC computes whole cuboids concurrently, one thread each;
//   - SDSC computes cuboids one at a time with a parallel skyline
//     algorithm, optionally spread across devices;
//   - MDMC processes one point per parallel task, computing the point's
//     subspace-membership bitmask over a shared static tree, and stores
//     the result in a compressed HashCube.
//
// GPUs are modelled by a software device (see internal/gpusim): kernels
// execute for real on the host under the device's occupancy, warp and
// coalescing constraints, and cross-device runs dynamically balance work
// between the CPU and any number of modelled cards.
//
// Quick start:
//
//	ds := skycube.GenerateSynthetic(skycube.Independent, 100_000, 8, 42)
//	cube, stats, err := skycube.Build(ds, skycube.Options{
//		Algorithm: skycube.MDMC,
//		Threads:   runtime.NumCPU(),
//	})
//	if err != nil { ... }
//	top := cube.Skyline(skycube.FullSpace(ds.Dims()))
//	_ = stats
package skycube

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"skycube/internal/gpu"
	"skycube/internal/gpusim"
	"skycube/internal/hashcube"
	"skycube/internal/hetero"
	"skycube/internal/lattice"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/qskycube"
	"skycube/internal/skyline"
	"skycube/internal/templates"
)

// Subspace identifies a non-empty subspace as a bitmask: bit i set means
// dimension i participates. Valid values are 1 … 2^d − 1.
type Subspace = uint32

// FullSpace returns the subspace containing all d dimensions.
func FullSpace(d int) Subspace { return mask.Full(d) }

// SubspaceOf returns the subspace containing exactly the given dimensions.
func SubspaceOf(dims ...int) Subspace {
	var s Subspace
	for _, d := range dims {
		s |= mask.Bit(d)
	}
	return s
}

// SubspaceDims returns the dimensions of a subspace in ascending order.
func SubspaceDims(s Subspace) []int { return mask.Dims(s) }

// SubspaceSize returns |δ|, the number of participating dimensions.
func SubspaceSize(s Subspace) int { return mask.Count(s) }

// AllSubspaces enumerates every non-empty subspace of a d-dimensional
// space in ascending numeric order.
func AllSubspaces(d int) []Subspace { return mask.Subspaces(d) }

// Algorithm selects a skycube construction algorithm.
type Algorithm int

const (
	// MDMC is the point-bitmask template (§4.3) — the paper's fastest
	// algorithm on most workloads, and the default.
	MDMC Algorithm = iota
	// STSC is the single-thread-single-cuboid template (§4.2.1).
	STSC
	// SDSC is the single-device-single-cuboid template (§4.2.2).
	SDSC
	// PQSkycube is the parallelised state-of-the-art baseline (§7.1).
	PQSkycube
	// QSkycube is the sequential state of the art (Lee & Hwang).
	QSkycube
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case MDMC:
		return "MDMC"
	case STSC:
		return "STSC"
	case SDSC:
		return "SDSC"
	case PQSkycube:
		return "PQSkycube"
	case QSkycube:
		return "QSkycube"
	}
	return "?"
}

// GPUModel names a modelled GPU card.
type GPUModel int

const (
	// GTX980 models the paper's primary card.
	GTX980 GPUModel = iota
	// GTXTitan models the older-generation card of the cross-device setup.
	GTXTitan
)

func (m GPUModel) device() *gpusim.Device {
	if m == GTXTitan {
		return gpusim.GTXTitan()
	}
	return gpusim.GTX980()
}

// Options configure Build.
type Options struct {
	// Algorithm defaults to MDMC.
	Algorithm Algorithm
	// Threads is the CPU worker count; 0 means runtime.NumCPU().
	Threads int
	// MaxLevel restricts materialisation to subspaces with at most this
	// many dimensions (partial skycubes, paper App. A.2); 0 = full skycube.
	MaxLevel int
	// GPUs lists modelled cards to use. For SDSC and MDMC:
	//   - nil: CPU only;
	//   - non-nil with CPUAlso false: GPU(s) only;
	//   - non-nil with CPUAlso true: heterogeneous cross-device execution.
	// STSC, QSkycube and PQSkycube are CPU-only (the paper: STSC cannot be
	// specialised for the GPU).
	GPUs []GPUModel
	// CPUAlso adds the CPU (as two socket devices) to a GPU run.
	CPUAlso bool
	// SDSCHook selects the parallel skyline algorithm the SDSC template
	// hooks in (§4.2.2's pluggability). The zero value picks the paper's
	// choices: Hybrid on the CPU, the SkyAlign-style kernel on the GPU.
	SDSCHook SDSCHook
	// Trace, if non-nil, records typed spans of the build (build → level →
	// cuboid, MDMC prologue phases and per-device chunk grabs). Export with
	// Trace.WriteChrome. Nil adds only a pointer test to the hot paths.
	Trace *Trace
	// Metrics, if non-nil, receives build counters, per-device task totals
	// and the modelled GPU counters. Serialise with Metrics.WritePrometheus
	// or serve it via internal/server's GET /metrics.
	Metrics *Metrics
	// Progress, if non-nil, is called as the build advances: once per
	// materialised cuboid (lattice algorithms) or completed point chunk
	// (MDMC). Must be cheap and safe for concurrent calls.
	Progress ProgressFunc
	// Scheduling tunes the adaptive work-stealing scheduler of cross-device
	// runs. The zero value enables stealing, chunk auto-tuning and SDSC's
	// cost-ordered cuboid assignment with the default knobs.
	Scheduling Scheduling
	// Delta tunes incremental maintenance (NewUpdater): snapshot history
	// depth and the background-compaction trigger. Ignored by Build.
	Delta DeltaOptions
	// Durable persists incremental maintenance (NewUpdater) to disk: a
	// write-ahead log of every accepted mutation plus epoch-snapshot
	// checkpoints under Durable.Dir, with crash recovery on startup. The
	// zero value (no Dir) keeps the updater purely in-memory. Ignored by
	// Build.
	Durable DurableOptions
}

// Scheduling configures the adaptive cross-device scheduler (the zero value
// is the recommended default). Cross-device MDMC feeds per-device queues
// from a global grab counter, auto-tunes each device's chunk size from its
// measured throughput, and lets idle devices steal half the remaining range
// of the most loaded queue; cross-device SDSC hands out each lattice
// level's cuboids cost-ordered largest-first.
type Scheduling struct {
	// DisableStealing turns off work stealing between device queues.
	DisableStealing bool
	// DisableRetune freezes chunk sizes at each device's hint instead of
	// auto-tuning them from the throughput EWMA.
	DisableRetune bool
	// DisableCostOrder keeps SDSC's within-level cuboid order numeric
	// instead of largest-first.
	DisableCostOrder bool
	// Prepartition statically splits the MDMC task range equally across the
	// devices up front (the textbook static schedule; with DisableStealing
	// it is the baseline of the imbalance experiment).
	Prepartition bool
	// MinChunk/MaxChunk clamp the auto-tuned grab size (defaults 16/4096).
	MinChunk, MaxChunk int
	// TargetChunkTime is the wall time one grab is tuned to take (default
	// 2 ms).
	TargetChunkTime time.Duration
	// RefillFactor is how many tuned chunks a queue pulls from the global
	// counter per refill; the surplus is what idle devices can steal
	// (default 4).
	RefillFactor int
}

// SchedCounters total the scheduling events of one cross-device build.
type SchedCounters = hetero.SchedCounters

func (s Scheduling) tuning(reg *Metrics) hetero.Tuning {
	return hetero.Tuning{
		DisableStealing:  s.DisableStealing,
		DisableRetune:    s.DisableRetune,
		DisableCostOrder: s.DisableCostOrder,
		Prepartition:     s.Prepartition,
		MinChunk:         s.MinChunk,
		MaxChunk:         s.MaxChunk,
		TargetChunkTime:  s.TargetChunkTime,
		RefillFactor:     s.RefillFactor,
		Metrics:          obs.NewSchedMetrics(reg),
	}
}

// SDSCHook names a parallel skyline algorithm for the SDSC template.
type SDSCHook int

const (
	// HookDefault is Hybrid on the CPU and the SkyAlign-style kernel on
	// the GPU — the paper's specialisations.
	HookDefault SDSCHook = iota
	// HookPSkyline is the naive divide-and-conquer multicore baseline
	// (CPU-only SDSC runs).
	HookPSkyline
	// HookGGS is the sort-based, throughput-oriented GPU baseline
	// (single-GPU SDSC runs).
	HookGGS
)

func (o Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.NumCPU()
}

// Skycube is a materialised skycube under either representation.
type Skycube interface {
	// Dims returns the data dimensionality d.
	Dims() int
	// Skyline returns the ids of the points in S_δ, ascending. For a
	// partial skycube, subspaces above MaxLevel return nil.
	Skyline(delta Subspace) []int32
	// MaxLevel returns the materialised level bound (== Dims for a full
	// skycube).
	MaxLevel() int
	// IDCount returns the total number of stored point ids — the
	// representation's space measure.
	IDCount() int
	// Membership returns the subspaces in which point id is a skyline
	// member, ascending — the inverse query of Skyline. For partial
	// skycubes only subspaces within MaxLevel are reported.
	Membership(id int32) []Subspace
}

// DeviceShare reports one device's fraction of the parallel tasks in a
// cross-device run (paper Fig. 12).
type DeviceShare = hetero.DeviceShare

// Stats describe a Build run.
type Stats struct {
	// Elapsed is the wall-clock construction time, measured from after the
	// dataset is resident to the completed skycube (the paper's timing
	// convention, §7.1).
	Elapsed time.Duration
	// Shares lists per-device task counts for cross-device runs.
	Shares []DeviceShare
	// GPUModelSeconds is the device cost model's estimate of GPU time, per
	// card, for GPU runs.
	GPUModelSeconds []float64
	// Sched totals the work-stealing scheduler's events for cross-device
	// MDMC runs (zero otherwise).
	Sched SchedCounters
}

// Build materialises the skycube of ds.
func Build(ds *Dataset, opt Options) (Skycube, Stats, error) {
	if ds == nil || ds.ds.N == 0 {
		return nil, Stats{}, fmt.Errorf("skycube: empty dataset")
	}
	threads := opt.threads()
	d := ds.ds.Dims
	tr := opt.Trace
	onCuboid, onChunk := progressHooks(opt, d)

	start := time.Now()
	bh := tr.Begin("build", obs.CatBuild, opt.Algorithm.String())
	bh.SetN(int64(ds.ds.N))
	var cube Skycube
	var stats Stats

	useGPU := len(opt.GPUs) > 0
	switch opt.Algorithm {
	case QSkycube:
		if useGPU {
			return nil, Stats{}, fmt.Errorf("skycube: QSkycube is CPU-only")
		}
		cube = latticeCube{qskycube.Build(ds.ds, qskycube.Options{Threads: 1, MaxLevel: opt.MaxLevel,
			Trace: tr, OnCuboid: onCuboid})}
	case PQSkycube:
		if useGPU {
			return nil, Stats{}, fmt.Errorf("skycube: PQSkycube is CPU-only")
		}
		cube = latticeCube{qskycube.Build(ds.ds, qskycube.Options{Threads: threads, MaxLevel: opt.MaxLevel,
			Trace: tr, OnCuboid: onCuboid})}
	case STSC:
		if useGPU {
			// §6.1: there is no single-threaded GPU algorithm to hook in.
			return nil, Stats{}, fmt.Errorf("skycube: STSC cannot be specialised for the GPU")
		}
		cube = latticeCube{templates.STSC(ds.ds, templates.Options{Threads: threads, MaxLevel: opt.MaxLevel,
			Trace: tr, OnCuboid: onCuboid})}
	case SDSC:
		switch {
		case !useGPU:
			topt := templates.Options{Threads: threads, MaxLevel: opt.MaxLevel, Trace: tr, OnCuboid: onCuboid}
			switch opt.SDSCHook {
			case HookDefault:
				cube = latticeCube{templates.SDSC(ds.ds, topt)}
			case HookPSkyline:
				cube = latticeCube{templates.SDSCWith(ds.ds, skyline.AlgoPSkyline, topt)}
			default:
				return nil, Stats{}, fmt.Errorf("skycube: hook %d is not a CPU SDSC hook", opt.SDSCHook)
			}
		case !opt.CPUAlso && len(opt.GPUs) == 1:
			collector := &gpu.StatsCollector{}
			dev := opt.GPUs[0].device()
			switch opt.SDSCHook {
			case HookDefault:
				cube = latticeCube{gpu.SDSCTraced(ds.ds, dev, opt.MaxLevel, collector, tr, onCuboid)}
			case HookGGS:
				cube = latticeCube{gpu.SDSCWithGGSTraced(ds.ds, dev, opt.MaxLevel, collector, tr, onCuboid)}
			default:
				return nil, Stats{}, fmt.Errorf("skycube: hook %d is not a GPU SDSC hook", opt.SDSCHook)
			}
			stats.GPUModelSeconds = []float64{dev.ModelSeconds(collector.Total())}
			exportGPUMetrics(opt.Metrics, dev.Name, collector, stats.GPUModelSeconds[0])
		default:
			devices, collectors := buildDevices(opt, threads)
			l, shares := hetero.SDSCAllSched(ds.ds, devices, opt.MaxLevel, opt.Scheduling.tuning(opt.Metrics), tr, onCuboid)
			cube = latticeCube{l}
			stats.Shares = shares.Fractions()
			stats.GPUModelSeconds = modelSeconds(opt, collectors)
			exportHeteroGPUMetrics(opt.Metrics, devices, collectors, stats.GPUModelSeconds)
		}
	case MDMC:
		switch {
		case !useGPU:
			mopt := templates.MDMCOptions{
				Options: templates.Options{Threads: threads, MaxLevel: opt.MaxLevel},
			}
			ctx := templates.PrepareMDMCTraced(ds.ds, threads, 0, opt.MaxLevel, tr)
			total := ctx.NumTasks()
			var chunk func(n int)
			if onChunk != nil {
				chunk = func(n int) { onChunk(n, total) }
			}
			templates.RunMDMCTraced(ctx, templates.CPUPointKernel(mopt), threads, tr, chunk)
			cube = hashCubeView{h: ctx.Cube, d: d, maxLevel: effectiveLevel(opt.MaxLevel, d)}
		case !opt.CPUAlso && len(opt.GPUs) == 1:
			collector := &gpu.StatsCollector{}
			dev := opt.GPUs[0].device()
			res := gpu.MDMCTraced(ds.ds, dev, threads, opt.MaxLevel, collector, tr)
			cube = hashCubeView{h: res.Cube, d: d, maxLevel: effectiveLevel(opt.MaxLevel, d)}
			stats.GPUModelSeconds = []float64{dev.ModelSeconds(collector.Total())}
			exportGPUMetrics(opt.Metrics, dev.Name, collector, stats.GPUModelSeconds[0])
			if onChunk != nil {
				onChunk(len(res.ExtRows), len(res.ExtRows))
			}
		default:
			devices, collectors := buildDevices(opt, threads)
			res, shares, sched := hetero.MDMCAllSched(ds.ds, devices, threads, opt.MaxLevel,
				opt.Scheduling.tuning(opt.Metrics), tr, onChunk)
			stats.Sched = sched
			cube = hashCubeView{h: res.Cube, d: d, maxLevel: effectiveLevel(opt.MaxLevel, d)}
			stats.Shares = shares.Fractions()
			stats.GPUModelSeconds = modelSeconds(opt, collectors)
			exportHeteroGPUMetrics(opt.Metrics, devices, collectors, stats.GPUModelSeconds)
		}
	default:
		return nil, Stats{}, fmt.Errorf("skycube: unknown algorithm %d", opt.Algorithm)
	}
	stats.Elapsed = time.Since(start)
	bh.End()
	exportBuildMetrics(opt.Metrics, opt.Algorithm, stats)
	return cube, stats, nil
}

// progressHooks builds the per-cuboid and per-chunk callbacks that feed
// Options.Progress and Options.Metrics. Both returned hooks are nil when
// neither sink is configured, so the builders skip them entirely.
func progressHooks(opt Options, d int) (func(delta mask.Mask), func(n, total int)) {
	if opt.Progress == nil && opt.Metrics == nil {
		return nil, nil
	}
	algo := opt.Algorithm.String()
	var cuboidCounter *obs.Counter
	var pointCounter *obs.Counter
	if opt.Metrics != nil {
		cuboidCounter = opt.Metrics.CounterM("skycube_cuboids_total",
			"Cuboids materialised by Build.", "algorithm", algo)
		pointCounter = opt.Metrics.CounterM("skycube_points_total",
			"MDMC point tasks completed by Build.", "algorithm", algo)
	}
	totalCuboids := materialisedCuboids(d, opt.MaxLevel)
	var cuboidsDone, pointsDone atomic.Int64
	onCuboid := func(delta mask.Mask) {
		done := cuboidsDone.Add(1)
		if cuboidCounter != nil {
			cuboidCounter.Inc()
		}
		if opt.Progress != nil {
			opt.Progress(Progress{
				Algorithm:    opt.Algorithm,
				Level:        mask.Count(delta),
				CuboidsDone:  int(done),
				TotalCuboids: totalCuboids,
			})
		}
	}
	onChunk := func(n, total int) {
		done := pointsDone.Add(int64(n))
		if pointCounter != nil {
			pointCounter.Add(float64(n))
		}
		if opt.Progress != nil {
			opt.Progress(Progress{
				Algorithm:   opt.Algorithm,
				PointsDone:  int(done),
				TotalPoints: total,
			})
		}
	}
	return onCuboid, onChunk
}

// materialisedCuboids counts the non-empty subspaces a build with the given
// level bound materialises: sum of C(d, l) for l = 1 … maxLevel.
func materialisedCuboids(d, maxLevel int) int {
	if maxLevel <= 0 || maxLevel >= d {
		return mask.NumSubspaces(d)
	}
	total := 0
	for l := 1; l <= maxLevel; l++ {
		total += mask.Binomial(d, l)
	}
	return total
}

// exportBuildMetrics records the whole-build counters once the run is done.
func exportBuildMetrics(reg *Metrics, algo Algorithm, stats Stats) {
	if reg == nil {
		return
	}
	name := algo.String()
	reg.CounterM("skycube_builds_total", "Completed Build calls.", "algorithm", name).Inc()
	reg.HistogramM("skycube_build_seconds", "Wall-clock build time.", nil,
		"algorithm", name).Observe(stats.Elapsed.Seconds())
	for _, s := range stats.Shares {
		reg.CounterM("skycube_device_tasks_total",
			"Parallel tasks completed per device in cross-device runs.",
			"device", s.Name).Add(float64(s.Tasks))
		reg.GaugeM("skycube_device_share_fraction",
			"Fraction of the parallel tasks the device took in the latest cross-device run.",
			"device", s.Name).Set(s.Fraction)
	}
}

// exportGPUMetrics records one modelled card's counters.
func exportGPUMetrics(reg *Metrics, device string, collector *gpu.StatsCollector, modelSec float64) {
	if reg == nil {
		return
	}
	st := collector.Total()
	reg.CounterM("skycube_gpu_instructions_total",
		"Modelled GPU instructions executed.", "device", device).Add(float64(st.Instructions))
	reg.CounterM("skycube_gpu_transactions_total",
		"Modelled GPU memory transactions.", "device", device).Add(float64(st.Transactions))
	reg.CounterM("skycube_gpu_transfer_bytes_total",
		"Modelled host↔device transfer bytes.", "device", device).Add(float64(st.TransferBytes))
	reg.GaugeM("skycube_gpu_model_seconds",
		"Cost model's GPU-time estimate for the latest build.", "device", device).Set(modelSec)
}

// exportHeteroGPUMetrics maps each collector back to its GPU device (the
// last len(collectors) entries of the device list) and exports its counters.
func exportHeteroGPUMetrics(reg *Metrics, devices []hetero.Device, collectors []*gpu.StatsCollector, modelSec []float64) {
	if reg == nil {
		return
	}
	base := len(devices) - len(collectors)
	for i, c := range collectors {
		exportGPUMetrics(reg, devices[base+i].Name(), c, modelSec[i])
	}
}

// buildDevices assembles the hetero device list: optionally two CPU socket
// devices, plus one device per requested GPU model.
func buildDevices(opt Options, threads int) ([]hetero.Device, []*gpu.StatsCollector) {
	var devices []hetero.Device
	if opt.CPUAlso {
		half := threads / 2
		if half < 1 {
			half = 1
		}
		rest := threads - half
		if rest < 1 {
			rest = 1
		}
		devices = append(devices,
			&hetero.CPUDevice{Threads: half, Label: "CPU0",
				MDMCOpt: templates.MDMCOptions{Options: templates.Options{MaxLevel: opt.MaxLevel}}},
			&hetero.CPUDevice{Threads: rest, Label: "CPU1",
				MDMCOpt: templates.MDMCOptions{Options: templates.Options{MaxLevel: opt.MaxLevel}}},
		)
	}
	collectors := make([]*gpu.StatsCollector, len(opt.GPUs))
	counts := map[GPUModel]int{}
	for i, m := range opt.GPUs {
		counts[m]++
		collectors[i] = &gpu.StatsCollector{}
		dev := m.device()
		devices = append(devices, &hetero.GPUDevice{
			Dev:   dev,
			Label: fmt.Sprintf("%s-%d", dev.Name, counts[m]),
			Stats: collectors[i],
		})
	}
	return devices, collectors
}

func modelSeconds(opt Options, collectors []*gpu.StatsCollector) []float64 {
	out := make([]float64, len(collectors))
	for i, c := range collectors {
		out[i] = opt.GPUs[i].device().ModelSeconds(c.Total())
	}
	return out
}

func effectiveLevel(maxLevel, d int) int {
	if maxLevel <= 0 || maxLevel > d {
		return d
	}
	return maxLevel
}

// latticeCube adapts the lattice representation to the Skycube interface.
type latticeCube struct {
	l *lattice.Lattice
}

func (c latticeCube) Dims() int { return c.l.D }

func (c latticeCube) Skyline(delta Subspace) []int32 {
	if delta == 0 || int(delta) >= 1<<uint(c.l.D) {
		return nil
	}
	return c.l.Skyline(delta)
}

func (c latticeCube) MaxLevel() int { return c.l.MaxLevel }

func (c latticeCube) Membership(id int32) []Subspace { return c.l.Membership(id) }

func (c latticeCube) IDCount() int { return c.l.IDCount() }

// hashCubeView adapts the HashCube representation.
type hashCubeView struct {
	h        *hashcube.HashCube
	d        int
	maxLevel int
}

func (c hashCubeView) Dims() int { return c.d }

func (c hashCubeView) Skyline(delta Subspace) []int32 {
	if delta == 0 || int(delta) >= 1<<uint(c.d) {
		return nil
	}
	if mask.Count(delta) > c.maxLevel {
		// Partial skycube: no correctness guarantee above MaxLevel (A.2).
		return nil
	}
	return c.h.Skyline(delta)
}

func (c hashCubeView) MaxLevel() int { return c.maxLevel }

func (c hashCubeView) Membership(id int32) []Subspace {
	all := c.h.Membership(id)
	if c.maxLevel >= c.d {
		return all
	}
	out := all[:0]
	for _, delta := range all {
		if mask.Count(delta) <= c.maxLevel {
			out = append(out, delta)
		}
	}
	return out
}

func (c hashCubeView) IDCount() int { return c.h.IDCount() }
