package skycube_test

import (
	"math/rand"
	"reflect"
	"testing"

	"skycube"
)

// TestDurableUpdaterRoundTrip drives the public durable API end to end:
// a fresh data directory, a few batches and a compaction, a clean close,
// then recovery — the reopened updater must answer every subspace query
// identically and report the replayed record count.
func TestDurableUpdaterRoundTrip(t *testing.T) {
	const d = 3
	dir := t.TempDir()
	ds := skycube.GenerateSynthetic(skycube.Independent, 120, d, 31)
	opt := skycube.Options{
		Threads: 2,
		Durable: skycube.DurableOptions{Dir: dir, CheckpointEvery: -1},
	}
	up, err := skycube.NewUpdater(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if up.Store() == nil {
		t.Fatal("durable updater has no store")
	}

	live := make([]int32, ds.Len())
	for i := range live {
		live[i] = int32(i)
	}
	tail := skycube.GenerateSynthetic(skycube.Independent, 30, d, 32)
	for i := 0; i < tail.Len(); i++ {
		id, err := up.Insert(tail.Point(i))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	rng := rand.New(rand.NewSource(33))
	for k := 0; k < 20; k++ {
		idx := rng.Intn(len(live))
		if err := up.Delete(live[idx]); err != nil {
			t.Fatal(err)
		}
		live = append(live[:idx], live[idx+1:]...)
	}
	up.Flush()
	up.Compact()
	for i := 0; i < 10; i++ {
		id, err := up.Insert(tail.Point(i))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	final := up.Flush()
	wantEpoch, wantLive := final.Epoch(), final.Live()
	want := map[skycube.Subspace][]int32{}
	for _, delta := range skycube.AllSubspaces(d) {
		want[delta] = final.Skyline(delta)
	}
	up.Close()

	re, err := skycube.NewUpdater(ds, opt)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if re.Replayed() == 0 {
		t.Fatal("recovery replayed no records")
	}
	snap := re.Current()
	if snap.Epoch() != wantEpoch || snap.Live() != wantLive {
		t.Fatalf("recovered epoch %d with %d live, want epoch %d with %d live",
			snap.Epoch(), snap.Live(), wantEpoch, wantLive)
	}
	for _, delta := range skycube.AllSubspaces(d) {
		if got := snap.Skyline(delta); !reflect.DeepEqual(got, want[delta]) {
			t.Fatalf("recovered δ=%b skyline:\n got %v\nwant %v", delta, got, want[delta])
		}
	}
	checkAgainstFreshBuild(t, snap, live)

	// The recovered updater keeps working: mutate, flush, verify.
	id, err := re.Insert(tail.Point(11))
	if err != nil {
		t.Fatal(err)
	}
	live = append(live, id)
	checkAgainstFreshBuild(t, re.Flush(), live)
}

// TestDurableOpenUpdaterWithoutDataset: a durable restart needs no data
// file — OpenUpdater recovers purely from the directory and must match the
// dataset-seeded reopen exactly. A fresh directory is refused: a first
// build needs the data.
func TestDurableOpenUpdaterWithoutDataset(t *testing.T) {
	const d = 3
	dir := t.TempDir()
	ds := skycube.GenerateSynthetic(skycube.Independent, 80, d, 51)
	opt := skycube.Options{
		Threads: 2,
		Durable: skycube.DurableOptions{Dir: dir, CheckpointEvery: -1},
	}
	up, err := skycube.NewUpdater(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	tail := skycube.GenerateSynthetic(skycube.Independent, 20, d, 52)
	for i := 0; i < tail.Len(); i++ {
		if _, err := up.Insert(tail.Point(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := up.Delete(3); err != nil {
		t.Fatal(err)
	}
	final := up.Flush()
	wantEpoch, wantLive := final.Epoch(), final.Live()
	want := map[skycube.Subspace][]int32{}
	for _, delta := range skycube.AllSubspaces(d) {
		want[delta] = final.Skyline(delta)
	}
	up.Close()

	re, err := skycube.OpenUpdater(opt)
	if err != nil {
		t.Fatalf("OpenUpdater: %v", err)
	}
	defer re.Close()
	if re.Replayed() == 0 {
		t.Fatal("recovery replayed no records")
	}
	snap := re.Current()
	if snap.Epoch() != wantEpoch || snap.Live() != wantLive {
		t.Fatalf("recovered epoch %d with %d live, want epoch %d with %d live",
			snap.Epoch(), snap.Live(), wantEpoch, wantLive)
	}
	for _, delta := range skycube.AllSubspaces(d) {
		if got := snap.Skyline(delta); !reflect.DeepEqual(got, want[delta]) {
			t.Fatalf("recovered δ=%b skyline:\n got %v\nwant %v", delta, got, want[delta])
		}
	}
	// The recovered updater keeps working without the dataset around.
	if _, err := re.Insert(tail.Point(0)); err != nil {
		t.Fatal(err)
	}
	re.Flush()

	if _, err := skycube.OpenUpdater(skycube.Options{
		Threads: 2,
		Durable: skycube.DurableOptions{Dir: t.TempDir(), CheckpointEvery: -1},
	}); err == nil {
		t.Fatal("OpenUpdater accepted a directory with nothing to recover")
	}
	if _, err := skycube.OpenUpdater(skycube.Options{Threads: 2}); err == nil {
		t.Fatal("OpenUpdater accepted an empty Durable.Dir")
	}
}

// TestInMemoryDefaultUnchanged: without Durable.Dir nothing touches disk
// and the updater reports no durability subsystem.
func TestInMemoryDefaultUnchanged(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 50, 3, 41)
	up, err := skycube.NewUpdater(ds, skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	if up.Store() != nil {
		t.Fatal("in-memory updater reports a durability store")
	}
	if up.Replayed() != 0 {
		t.Fatalf("in-memory updater replayed %d records", up.Replayed())
	}
}

// TestDurableUpdaterBadPolicy: an unknown fsync policy is a construction
// error, not a silent fallback.
func TestDurableUpdaterBadPolicy(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 20, 3, 42)
	_, err := skycube.NewUpdater(ds, skycube.Options{
		Durable: skycube.DurableOptions{Dir: t.TempDir(), Fsync: "maybe"},
	})
	if err == nil {
		t.Fatal("unknown fsync policy accepted")
	}
}
