// Edge-case tests for the HashCube-backed Skycube view (hashCubeView):
// degenerate subspace arguments, the full space at d=10, and ids that
// appear in no cuboid at all.
package skycube_test

import (
	"testing"

	"skycube"
)

// buildMDMC builds the default HashCube-backed skycube.
func buildMDMC(t *testing.T, ds *skycube.Dataset) skycube.Skycube {
	t.Helper()
	cube, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.MDMC, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

func TestHashCubeViewEmptySubspace(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 100, 4, 1)
	cube := buildMDMC(t, ds)
	if got := cube.Skyline(0); got != nil {
		t.Fatalf("Skyline(0) = %v, want nil", got)
	}
	// Out-of-range masks (≥ 2^d) are equally meaningless.
	if got := cube.Skyline(skycube.Subspace(1 << 4)); got != nil {
		t.Fatalf("Skyline(2^d) = %v, want nil", got)
	}
	if got := cube.Skyline(skycube.Subspace(1<<4) | 3); got != nil {
		t.Fatalf("Skyline(out of range) = %v, want nil", got)
	}
	for _, id := range []int32{0, 50, 99} {
		for _, delta := range cube.Membership(id) {
			if delta == 0 {
				t.Fatalf("Membership(%d) contains the empty subspace", id)
			}
		}
	}
}

func TestHashCubeViewFullSpaceD10(t *testing.T) {
	const d = 10
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 60, d, 3)
	cube := buildMDMC(t, ds)
	oracle, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.QSkycube, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	full := skycube.FullSpace(d)
	if uint32(full) != 1<<d-1 {
		t.Fatalf("FullSpace(%d) = %b", d, full)
	}
	got, want := cube.Skyline(full), oracle.Skyline(full)
	if len(got) != len(want) {
		t.Fatalf("full-space skyline: %d ids, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("full-space skyline[%d] = %d, oracle %d", i, got[i], want[i])
		}
	}
	// Membership must agree with Skyline across the entire 2^10-1 lattice.
	inSkyline := make(map[int32]map[skycube.Subspace]bool, ds.Len())
	for delta := skycube.Subspace(1); delta < 1<<d; delta++ {
		for _, id := range cube.Skyline(delta) {
			m, ok := inSkyline[id]
			if !ok {
				m = map[skycube.Subspace]bool{}
				inSkyline[id] = m
			}
			m[delta] = true
		}
	}
	for id := int32(0); int(id) < ds.Len(); id++ {
		member := cube.Membership(id)
		if len(member) != len(inSkyline[id]) {
			t.Fatalf("id %d: Membership lists %d subspaces, Skyline scan found %d",
				id, len(member), len(inSkyline[id]))
		}
		for _, delta := range member {
			if !inSkyline[id][delta] {
				t.Fatalf("id %d: Membership contains %b but Skyline(%b) omits it", id, delta, delta)
			}
		}
	}
}

func TestHashCubeViewAbsentIDs(t *testing.T) {
	// Row 1 is strictly worse than row 0 in every dimension, so it is
	// dominated in every subspace and must appear in no cuboid.
	rows := [][]float32{
		{0.01, 0.01, 0.01},
		{0.9, 0.9, 0.9},
		{0.05, 0.8, 0.5},
		{0.8, 0.05, 0.5},
	}
	ds, err := skycube.DatasetFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	cube := buildMDMC(t, ds)
	if m := cube.Membership(1); len(m) != 0 {
		t.Fatalf("Membership of a universally dominated point = %v, want empty", m)
	}
	for delta := skycube.Subspace(1); delta < 1<<3; delta++ {
		for _, id := range cube.Skyline(delta) {
			if id == 1 {
				t.Fatalf("universally dominated point in Skyline(%b)", delta)
			}
		}
	}
	// Ids that were never in the dataset are absent from every cuboid too.
	for _, id := range []int32{int32(len(rows)), 1000, -1} {
		if m := cube.Membership(id); len(m) != 0 {
			t.Fatalf("Membership(%d) = %v for an id outside the dataset", id, m)
		}
	}
	// The dominator itself is everywhere.
	if m := cube.Membership(0); len(m) != 1<<3-1 {
		t.Fatalf("Membership of the universal dominator lists %d subspaces, want 7", len(m))
	}
}
