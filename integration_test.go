// End-to-end integration tests exercising the full pipeline the CLI tools
// use: generate → serialise → parse → build (every algorithm and device
// mix) → query (per-subspace and per-point) → serve.
package skycube_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"skycube"
	"skycube/internal/server"
)

func TestEndToEndPipeline(t *testing.T) {
	// Generate and round-trip through the text format, as datagen |
	// skycubed does.
	orig := skycube.GenerateSynthetic(skycube.Anticorrelated, 800, 5, 99)
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := skycube.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != orig.Len() || ds.Dims() != orig.Dims() {
		t.Fatalf("round trip: %dx%d", ds.Len(), ds.Dims())
	}

	// Build with every algorithm and a device mix; all must agree.
	builds := map[string]skycube.Options{
		"QSkycube":  {Algorithm: skycube.QSkycube, Threads: 1},
		"PQSkycube": {Algorithm: skycube.PQSkycube, Threads: 4},
		"STSC":      {Algorithm: skycube.STSC, Threads: 4},
		"SDSC":      {Algorithm: skycube.SDSC, Threads: 4},
		"MDMC":      {Algorithm: skycube.MDMC, Threads: 4},
		"MDMC-All": {Algorithm: skycube.MDMC, Threads: 4, CPUAlso: true,
			GPUs: []skycube.GPUModel{skycube.GTX980, skycube.GTXTitan}},
	}
	cubes := map[string]skycube.Skycube{}
	for name, opt := range builds {
		cube, _, err := skycube.Build(ds, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cubes[name] = cube
	}
	ref := cubes["QSkycube"]
	for _, delta := range skycube.AllSubspaces(ds.Dims()) {
		want := ref.Skyline(delta)
		for name, cube := range cubes {
			if got := cube.Skyline(delta); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s disagrees with QSkycube on δ=%b", name, delta)
			}
		}
	}

	// Membership agrees across representations for a sample of points.
	for id := int32(0); id < 50; id++ {
		a := cubes["STSC"].Membership(id)
		b := cubes["MDMC"].Membership(id)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("membership of %d differs: lattice %v vs hashcube %v", id, a, b)
		}
	}

	// Serve the cube and query it over HTTP, as skycubed -serve does.
	srv := httptest.NewServer(server.New(cubes["MDMC"], ds))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/skyline?dims=0,3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP skyline: status %d", resp.StatusCode)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body.Bytes(), []byte(`"count"`)) {
		t.Errorf("unexpected body: %s", body.String())
	}
}

func TestEndToEndPartialPipeline(t *testing.T) {
	ds := skycube.GenerateReal(skycube.Covertype, 0.002, 5)
	cube, stats, err := skycube.Build(ds, skycube.Options{
		Algorithm: skycube.MDMC, Threads: 4, MaxLevel: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
	full, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.STSC, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range skycube.AllSubspaces(ds.Dims()) {
		if skycube.SubspaceSize(delta) > 3 {
			continue
		}
		if !reflect.DeepEqual(cube.Skyline(delta), full.Skyline(delta)) {
			t.Fatalf("partial cube wrong on δ=%b", delta)
		}
	}
}
